"""Property-based tests for the reordering mechanism (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conflict_graph import build_conflict_graph, schedule_is_serializable
from repro.core.early_abort import filter_stale_within_block
from repro.core.reorder import reorder
from repro.fabric.rwset import ReadWriteSet
from repro.graphalgo import is_acyclic
from repro.ledger.state_db import Version
from tests.conftest import count_valid_in_order

KEYS = [f"k{i}" for i in range(8)]


@st.composite
def random_rwset(draw):
    reads = draw(st.lists(st.sampled_from(KEYS), max_size=4, unique=True))
    writes = draw(st.lists(st.sampled_from(KEYS), max_size=4, unique=True))
    version = Version(draw(st.integers(min_value=1, max_value=3)), 0)
    result = ReadWriteSet()
    for key in reads:
        result.record_read(key, version)
    for key in writes:
        result.record_write(key, f"v-{key}")
    return result


random_block = st.lists(random_rwset(), max_size=14)


@given(random_block)
@settings(deadline=None)
def test_schedule_plus_aborted_partition_input(block):
    result = reorder(block)
    assert sorted(result.schedule + result.aborted) == list(range(len(block)))


@given(random_block)
@settings(deadline=None)
def test_schedule_always_serializable(block):
    result = reorder(block)
    assert schedule_is_serializable(block, result.schedule)


@given(random_block)
@settings(deadline=None)
def test_survivor_conflict_graph_acyclic(block):
    result = reorder(block)
    survivors = [block[i] for i in result.schedule]
    assert is_acyclic(build_conflict_graph(survivors))


@given(random_block)
@settings(deadline=None)
def test_all_scheduled_transactions_would_commit(block):
    """Key end-to-end property: replaying the schedule through Fabric's
    within-block validation rule commits every scheduled transaction.

    Within one block every read version matches the pre-block state by
    construction here (single version per key), so staleness can only
    come from within-block write ordering — which reordering eliminates.
    """
    uniform = []
    for rwset in block:
        clone = ReadWriteSet()
        for key in rwset.reads:
            clone.record_read(key, Version(1, 0))
        for key, value in rwset.writes.items():
            clone.record_write(key, value)
        uniform.append(clone)
    result = reorder(uniform)
    assert count_valid_in_order(uniform, result.schedule) == len(result.schedule)


@given(random_block)
@settings(deadline=None)
def test_reordering_never_worse_when_conflict_graph_acyclic(block):
    """On cycle-free blocks, reordering commits *everything* — always at
    least as much as arrival order.

    (On cyclic blocks the paper's greedy heuristic carries no such
    guarantee — see test_greedy_can_lose_to_arrival_order_on_cliques.)
    """
    uniform = []
    for rwset in block:
        clone = ReadWriteSet()
        for key in rwset.reads:
            clone.record_read(key, Version(1, 0))
        for key, value in rwset.writes.items():
            clone.record_write(key, value)
        uniform.append(clone)
    if not is_acyclic(build_conflict_graph(uniform)):
        return
    arrival = count_valid_in_order(uniform, range(len(uniform)))
    result = reorder(uniform)
    assert result.aborted == []
    assert len(result.schedule) == len(uniform) >= arrival


def test_greedy_can_lose_to_arrival_order_on_cliques():
    """Documented non-guarantee: Algorithm 1 greedily breaks cycles by
    cycle-participation count and can abort more transactions than the
    arrival order loses on dense conflict cliques. The paper concedes the
    heuristic is not abort-minimal (NP-hard); this regression test pins
    the behaviour so a future 'fix' is a conscious trade-off.
    """
    v = Version(1, 0)

    def make(reads, writes):
        clone = ReadWriteSet()
        for key in reads:
            clone.record_read(key, v)
        for key in writes:
            clone.record_write(key, f"v-{key}")
        return clone

    block = (
        [make(["k0"], ["k1"])]
        + [make(["k0", "k1"], ["k0"]) for _ in range(2)]
        + [make(["k0"], ["k0"])]
        + [make(["k0", "k1"], ["k0"]) for _ in range(3)]
    )
    arrival = count_valid_in_order(block, range(len(block)))
    result = reorder(block)
    assert arrival == 2
    assert len(result.schedule) == 1  # greedy keeps only one here


@given(random_block, st.integers(min_value=1, max_value=5))
@settings(deadline=None)
def test_cycle_cap_preserves_serializability(block, cap):
    result = reorder(block, max_cycles=cap)
    assert schedule_is_serializable(block, result.schedule)
    assert sorted(result.schedule + result.aborted) == list(range(len(block)))


@given(random_block)
@settings(deadline=None)
def test_reorder_is_deterministic(block):
    first = reorder(block)
    second = reorder(block)
    assert first.schedule == second.schedule
    assert first.aborted == second.aborted


@given(random_block)
@settings(deadline=None)
def test_version_filter_partition(block):
    kept, aborted = filter_stale_within_block(block)
    assert sorted(kept + aborted) == list(range(len(block)))


@given(random_block)
@settings(deadline=None)
def test_version_filter_keeps_newest_readers(block):
    kept, _ = filter_stale_within_block(block)
    newest = {}
    for rwset in block:
        for key, version in rwset.reads.items():
            if key not in newest or (version is not None and (
                newest[key] is None or version > newest[key]
            )):
                newest[key] = version
    for index in kept:
        for key, version in block[index].reads.items():
            assert version == newest[key]
