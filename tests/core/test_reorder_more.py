"""Additional reordering properties and schedule-construction tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conflict_graph import build_conflict_graph, schedule_is_serializable
from repro.core.reorder import _build_schedule, reorder
from repro.fabric.rwset import ReadWriteSet
from repro.graphalgo import DiGraph
from repro.ledger.state_db import Version
from repro.testing import rwset

KEYS = [f"k{i}" for i in range(6)]


@st.composite
def random_rwset(draw):
    reads = draw(st.lists(st.sampled_from(KEYS), max_size=3, unique=True))
    writes = draw(st.lists(st.sampled_from(KEYS), max_size=3, unique=True))
    result = ReadWriteSet()
    for key in reads:
        result.record_read(key, Version(1, 0))
    for key in writes:
        result.record_write(key, 1)
    return result


@given(st.lists(random_rwset(), max_size=10))
@settings(deadline=None)
def test_reorder_is_idempotent(block):
    """Reordering a reordered block keeps every transaction: the
    survivors' conflict graph is acyclic, so no further aborts happen."""
    first = reorder(block)
    survivors = [block[i] for i in first.schedule]
    second = reorder(survivors)
    assert second.aborted == []
    assert len(second.schedule) == len(survivors)
    final = [survivors[i] for i in second.schedule]
    assert schedule_is_serializable(block, [
        first.schedule[second.schedule[i]] for i in range(len(final))
    ])


@given(st.lists(random_rwset(), max_size=10))
@settings(deadline=None)
def test_read_only_transactions_never_aborted(block):
    readers = [rwset(reads=["k0", "k1"]) for _ in range(3)]
    combined = list(block) + readers
    result = reorder(combined)
    reader_indices = set(range(len(block), len(combined)))
    assert not reader_indices & set(result.aborted)


@given(st.lists(random_rwset(), max_size=10))
@settings(deadline=None)
def test_write_only_transactions_never_aborted(block):
    """Blind writers read nothing, so no edge points *into* them from a
    cycle they complete... they can still appear in cycles only via
    their writes conflicting into readers; a write-only tx has no reads,
    so no incoming write->read edge targets it — it cannot be on a cycle."""
    writers = [rwset(writes=["k0", "k1"]) for _ in range(2)]
    combined = list(block) + writers
    result = reorder(combined)
    writer_indices = set(range(len(block), len(combined)))
    assert not writer_indices & set(result.aborted)


# -- _build_schedule on handmade DAGs -----------------------------------------------


def test_build_schedule_empty():
    assert _build_schedule(DiGraph()) == []


def test_build_schedule_single_node():
    assert _build_schedule(DiGraph([0])) == [0]


def test_build_schedule_chain():
    graph = DiGraph()
    graph.add_edge(0, 1)  # 0 writes what 1 reads: 1 must commit first
    graph.add_edge(1, 2)
    order = _build_schedule(graph)
    assert order.index(2) < order.index(1) < order.index(0)


def test_build_schedule_respects_reverse_topology():
    graph = DiGraph()
    edges = [(0, 2), (1, 2), (2, 3), (1, 3)]
    for a, b in edges:
        graph.add_edge(a, b)
    order = _build_schedule(graph)
    position = {node: i for i, node in enumerate(order)}
    for writer, reader in edges:
        assert position[reader] < position[writer]


def test_build_schedule_covers_disconnected_nodes():
    graph = DiGraph([0, 1, 2, 3])
    graph.add_edge(0, 1)
    order = _build_schedule(graph)
    assert sorted(order) == [0, 1, 2, 3]


def test_paper_schedule_traversal_example(table3):
    """Step 5's traversal on the cycle-free C(S'): T5 => T1 => T3 => T4."""
    survivors = [1, 3, 4, 5]
    reduced = build_conflict_graph([table3[i] for i in survivors])
    local = _build_schedule(reduced)
    assert [survivors[i] for i in local] == [5, 1, 3, 4]
