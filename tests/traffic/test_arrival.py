"""Unit and property tests for the open-loop arrival processes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sim.distributions import Rng, mix_seed
from repro.traffic import (
    ARRIVAL_KINDS,
    TRAFFIC_SEED_SALT,
    ArrivalProcess,
    ArrivalSampler,
)

OPEN_KINDS = tuple(kind for kind in ARRIVAL_KINDS if kind != "closed")


def sampler(kind: str, seed: int = 0, rate: float = 200.0) -> ArrivalSampler:
    return ArrivalSampler(
        ArrivalProcess(kind=kind), rate, Rng(mix_seed(seed, TRAFFIC_SEED_SALT))
    )


def intervals(sampler: ArrivalSampler, count: int):
    now, out = 0.0, []
    for _ in range(count):
        gap = sampler.next_interval(now)
        out.append(gap)
        now += gap
    return out


# -- validation -----------------------------------------------------------------


def test_default_process_is_closed_and_valid():
    process = ArrivalProcess()
    assert process.is_closed
    process.validate()


@pytest.mark.parametrize(
    "kwargs",
    [
        {"kind": "bursty"},
        {"kind": "poisson", "rate": 0.0},
        {"kind": "poisson", "rate": -5.0},
        {"kind": "diurnal", "period": 0.0},
        {"kind": "diurnal", "amplitude": 1.0},
        {"kind": "diurnal", "amplitude": -0.1},
        {"kind": "flash", "flash_at": -1.0},
        {"kind": "flash", "flash_duration": 0.0},
        {"kind": "flash", "flash_factor": 0.5},
        {"kind": "heavy_tail", "pareto_shape": 1.0},
    ],
)
def test_invalid_processes_rejected(kwargs):
    with pytest.raises(ConfigError):
        ArrivalProcess(**kwargs).validate()


def test_sampler_rejects_closed_process():
    with pytest.raises(ConfigError):
        ArrivalSampler(ArrivalProcess(), 100.0, Rng(0))


def test_effective_rate_prefers_explicit_rate():
    assert ArrivalProcess(kind="poisson").effective_rate(250.0) == 250.0
    assert ArrivalProcess(kind="poisson", rate=80.0).effective_rate(250.0) == 80.0


# -- determinism ----------------------------------------------------------------


@pytest.mark.parametrize("kind", OPEN_KINDS)
def test_same_seed_same_stream(kind):
    first = intervals(sampler(kind, seed=7), 200)
    second = intervals(sampler(kind, seed=7), 200)
    assert first == second


@pytest.mark.parametrize("kind", OPEN_KINDS)
def test_different_seeds_differ(kind):
    assert intervals(sampler(kind, seed=1), 50) != intervals(
        sampler(kind, seed=2), 50
    )


@pytest.mark.parametrize("kind", OPEN_KINDS)
def test_intervals_are_positive(kind):
    assert all(gap > 0.0 for gap in intervals(sampler(kind, seed=3), 500))


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_identical_seeds_yield_identical_streams(seed):
    """The satellite property: one seed, one stream, every time."""
    for kind in OPEN_KINDS:
        assert intervals(sampler(kind, seed=seed), 64) == intervals(
            sampler(kind, seed=seed), 64
        )


# -- statistical shape ----------------------------------------------------------


@given(
    rate=st.floats(min_value=20.0, max_value=800.0),
    seed=st.integers(min_value=0, max_value=2**20),
)
@settings(max_examples=20, deadline=None)
def test_poisson_interarrival_mean_matches_rate(rate, seed):
    process = ArrivalProcess(kind="poisson", rate=rate)
    rng = Rng(mix_seed(seed, TRAFFIC_SEED_SALT))
    draws = intervals(ArrivalSampler(process, 100.0, rng), 4000)
    mean = sum(draws) / len(draws)
    # Standard error of the mean is (1/rate)/sqrt(n) ~ 1.6% here; a 10%
    # band keeps the property sharp without flaking.
    assert abs(mean - 1.0 / rate) < 0.10 / rate


def test_heavy_tail_mean_matches_rate():
    # Shape 3.0 has finite variance, so the sample mean converges fast
    # enough to pin; the default shape 1.5 (infinite variance) is only
    # checked for positivity above.
    process = ArrivalProcess(kind="heavy_tail", rate=100.0, pareto_shape=3.0)
    draws = intervals(ArrivalSampler(process, 100.0, Rng(5)), 30_000)
    mean = sum(draws) / len(draws)
    assert abs(mean - 0.01) < 0.0015


def test_flash_concentrates_arrivals_in_the_window():
    process = ArrivalProcess(
        kind="flash", rate=100.0, flash_at=0.5, flash_duration=0.5, flash_factor=8.0
    )
    arrival_sampler = ArrivalSampler(process, 100.0, Rng(9))
    now, inside, outside = 0.0, 0, 0
    while now < 2.0:
        now += arrival_sampler.next_interval(now)
        if 0.5 <= now < 1.0:
            inside += 1
        else:
            outside += 1
    # The flash window is a quarter of the horizon but carries an 8x
    # rate: it must dominate the arrival count outright.
    assert inside > outside


def test_diurnal_rate_tracks_the_sinusoid():
    process = ArrivalProcess(kind="diurnal", rate=400.0, period=1.0, amplitude=0.8)
    arrival_sampler = ArrivalSampler(process, 400.0, Rng(4))
    counts = [0, 0, 0, 0]
    now = 0.0
    while now < 8.0:
        now += arrival_sampler.next_interval(now)
        counts[int((now % 1.0) * 4) % 4] += 1
    # lambda(t) = 400 * (1 + 0.8 sin(2 pi t)): the first quarter-period
    # peaks, the third troughs.
    assert counts[0] > counts[2] * 2
