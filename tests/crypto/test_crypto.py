"""Unit tests for identities and simulated signatures."""

import pytest

from repro.crypto.identity import Identity, IdentityRegistry, KeyPair
from repro.crypto.signing import Signature, sign, verify
from repro.errors import CryptoError


@pytest.fixture
def registry():
    reg = IdentityRegistry()
    reg.register("peer0.OrgA", "OrgA")
    reg.register("peer0.OrgB", "OrgB")
    return reg


def test_keypair_deterministic():
    a = KeyPair.generate(b"seed")
    b = KeyPair.generate(b"seed")
    assert a == b
    assert a.secret != a.verify_token


def test_different_seeds_different_keys():
    assert KeyPair.generate(b"x") != KeyPair.generate(b"y")


def test_identity_create():
    identity = Identity.create("peer1.OrgA", "OrgA")
    assert identity.name == "peer1.OrgA"
    assert identity.org == "OrgA"


def test_registry_register_and_lookup(registry):
    identity = registry.lookup("peer0.OrgA")
    assert identity.org == "OrgA"
    assert "peer0.OrgA" in registry
    assert "ghost" not in registry


def test_registry_duplicate_rejected(registry):
    with pytest.raises(CryptoError):
        registry.register("peer0.OrgA", "OrgA")


def test_registry_unknown_lookup_raises(registry):
    with pytest.raises(CryptoError):
        registry.lookup("ghost")


def test_members_of(registry):
    registry.register("peer1.OrgA", "OrgA")
    names = sorted(m.name for m in registry.members_of("OrgA"))
    assert names == ["peer0.OrgA", "peer1.OrgA"]


def test_sign_verify_roundtrip(registry):
    identity = registry.lookup("peer0.OrgA")
    signature = sign(identity, b"payload")
    assert verify(registry, signature, b"payload")


def test_verify_rejects_tampered_payload(registry):
    identity = registry.lookup("peer0.OrgA")
    signature = sign(identity, b"payload")
    assert not verify(registry, signature, b"tampered")


def test_verify_rejects_wrong_signer_claim(registry):
    """A signature cannot be re-attributed to another identity."""
    orga = registry.lookup("peer0.OrgA")
    signature = sign(orga, b"payload")
    forged = Signature(signer="peer0.OrgB", value=signature.value)
    assert not verify(registry, forged, b"payload")


def test_verify_rejects_unknown_signer(registry):
    signature = Signature(signer="nobody", value=b"\x00" * 32)
    assert not verify(registry, signature, b"payload")


def test_signatures_deterministic(registry):
    identity = registry.lookup("peer0.OrgA")
    assert sign(identity, b"x") == sign(identity, b"x")
    assert sign(identity, b"x") != sign(identity, b"y")


def test_two_identities_sign_differently(registry):
    a = registry.lookup("peer0.OrgA")
    b = registry.lookup("peer0.OrgB")
    assert sign(a, b"same payload").value != sign(b, b"same payload").value
