"""Crash-recovery oracle: a recovered peer is indistinguishable from one
that never crashed.

The strongest correctness statement the fault layer can make: after the
run drains, the crashed-and-recovered peer's ledger (chain hashes and
per-transaction validity flags), state database (values *and* versions)
and JSON export are byte-identical to the reference peer's — across
several seeds and under both vanilla Fabric and Fabric++ validation.
"""

import json
from dataclasses import replace

import pytest

from repro.bench.harness import run_experiment_with_network
from repro.bench.spec import ExperimentSpec
from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.faults import CrashWindow, FaultSchedule
from repro.ledger.export import export_ledger
from repro.workloads.registry import WorkloadRef

CRASHED = "peer1.OrgA"


def run_with_crash(seed: int, fabricpp: bool):
    config = replace(
        FabricConfig(),
        batch=BatchCutConfig(max_transactions=64),
        clients_per_channel=2,
        client_rate=150.0,
        seed=seed,
        endorsement_policy="outof:1",
        faults=FaultSchedule(
            crashes=(CrashWindow(peer=CRASHED, at=0.4, duration=0.8),),
            endorsement_timeout=0.05,
        ),
    )
    if fabricpp:
        config = config.with_fabric_plus_plus()
    workload = WorkloadRef(
        "smallbank",
        {"num_users": 400, "prob_write": 0.95, "s_value": 0.0},
        seed=seed,
    )
    spec = ExperimentSpec(
        config=config, workload=workload, duration=2.0, drain=5.0, label="o"
    )
    return run_experiment_with_network(spec)


@pytest.mark.parametrize("seed", [3, 11, 29])
@pytest.mark.parametrize("fabricpp", [False, True], ids=["vanilla", "fabric++"])
def test_recovered_peer_converges_to_reference(seed, fabricpp):
    result, network = run_with_crash(seed, fabricpp)
    assert result.metrics.fault_counters.get("recoveries") == 1
    recovered = network._peer_by_name[CRASHED].channels["ch0"]
    reference = network.reference_peer.channels["ch0"]
    assert reference.ledger.height > 0

    # Chain: same height, same hashes, same validity flags.
    assert recovered.ledger.height == reference.ledger.height
    assert recovered.ledger.tip_hash == reference.ledger.tip_hash
    for mine, theirs in zip(recovered.ledger, reference.ledger):
        assert mine.header.data_hash == theirs.header.data_hash
        assert mine.validity == theirs.validity

    # State: identical keys, values and write versions.
    mine = dict(recovered.state.items())
    theirs = dict(reference.state.items())
    assert mine == theirs
    assert recovered.state.last_block_id == reference.state.last_block_id

    # Export: the serialised ledgers are byte-identical.
    assert json.dumps(export_ledger(recovered.ledger), sort_keys=True) == (
        json.dumps(export_ledger(reference.ledger), sort_keys=True)
    )


def test_crash_actually_lost_blocks_before_catch_up():
    """Sanity: the oracle is meaningful only if the crash really dropped
    work — the run must have replayed blocks during catch-up."""
    result, _network = run_with_crash(seed=3, fabricpp=False)
    assert result.metrics.fault_counters.get("blocks_caught_up", 0) > 0


def run_with_double_crash(seed: int):
    """Two back-to-back outages: the second begins at 0.85, while the
    peer is typically still replaying blocks it missed during the first
    (catch-up polls every 0.1s and the first recovery lands at 0.8)."""
    config = replace(
        FabricConfig(),
        batch=BatchCutConfig(max_transactions=64),
        clients_per_channel=2,
        client_rate=150.0,
        seed=seed,
        endorsement_policy="outof:1",
        faults=FaultSchedule(
            crashes=(
                CrashWindow(peer=CRASHED, at=0.4, duration=0.4),
                CrashWindow(peer=CRASHED, at=0.85, duration=0.4),
            ),
            endorsement_timeout=0.05,
        ),
    )
    workload = WorkloadRef(
        "smallbank",
        {"num_users": 400, "prob_write": 0.95, "s_value": 0.0},
        seed=seed,
    )
    spec = ExperimentSpec(
        config=config, workload=workload, duration=2.0, drain=5.0, label="o2"
    )
    return run_experiment_with_network(spec)


@pytest.mark.parametrize("seed", [3, 11])
def test_crash_during_catch_up_still_converges(seed):
    result, network = run_with_double_crash(seed)
    assert result.metrics.fault_counters.get("crashes") == 2
    assert result.metrics.fault_counters.get("recoveries") == 2
    assert result.metrics.fault_counters.get("blocks_caught_up", 0) > 0

    recovered = network._peer_by_name[CRASHED].channels["ch0"]
    reference = network.reference_peer.channels["ch0"]
    assert reference.ledger.height > 0
    assert recovered.ledger.tip_hash == reference.ledger.tip_hash
    assert dict(recovered.state.items()) == dict(reference.state.items())
    assert json.dumps(export_ledger(recovered.ledger), sort_keys=True) == (
        json.dumps(export_ledger(reference.ledger), sort_keys=True)
    )
