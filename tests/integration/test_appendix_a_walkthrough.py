"""The paper's Appendix A running example, replayed step by step.

Two organizations A and B transfer money between balances BalA and BalB.
The appendix walks a proposal through simulation (Figure 12), ordering
(Figure 13), and validation/commit (Figure 14), including a malicious
transaction T8 (forged write set) and a stale transaction T9.
"""

from dataclasses import replace

import pytest

from repro.fabric.chaincode import Chaincode, ChaincodeRegistry
from repro.fabric.config import FabricConfig
from repro.fabric.metrics import TxOutcome
from repro.fabric.rwset import ReadWriteSet
from repro.fabric.transaction import Transaction
from repro.ledger.block import Block
from repro.ledger.ledger import GENESIS_HASH
from repro.ledger.state_db import Version
from tests.fabric.conftest import TestBed


class MoneyTransfer(Chaincode):
    """The appendix's smart contract: BalA -= amount, BalB += amount."""

    name = "transfer"

    def invoke(self, stub, function, args):
        source, destination, amount = args
        source_balance = stub.get_state(source)
        destination_balance = stub.get_state(destination)
        stub.put_state(source, source_balance - amount)
        stub.put_state(destination, destination_balance + amount)

    def operation_count(self, function, args):
        return 4


@pytest.fixture
def bed():
    bed = TestBed(initial={"BalA": 100, "BalB": 50})
    bed.chaincodes.install(MoneyTransfer())
    return bed


def transfer_proposal(bed, proposal_id, amount=30):
    proposal = bed.proposal(proposal_id)
    return replace(
        proposal, chaincode="transfer", function="move",
        args=("BalA", "BalB", amount),
    )


def test_simulation_phase_builds_expected_rwset(bed):
    """Figure 12: RS = {(BalA,v), (BalB,v)}, WS = {BalA=70, BalB=80}."""
    proposal = transfer_proposal(bed, "T7")
    replies = bed.endorse_everywhere(proposal)
    rwset = replies[0].endorsement.rwset
    genesis = Version(0, 0)
    assert rwset.reads == {"BalA": genesis, "BalB": genesis}
    assert rwset.writes == {"BalA": 70, "BalB": 80}
    # Both endorsers computed identical sets and signed them.
    assert replies[0].endorsement.rwset == replies[1].endorsement.rwset
    assert replies[0].endorsement.signature != replies[1].endorsement.signature


def test_simulation_does_not_change_state(bed):
    proposal = transfer_proposal(bed, "T7")
    bed.endorse_everywhere(proposal)
    for peer in bed.peers:
        assert peer.channels["ch0"].state.get_value("BalA") == 100


def test_valid_transfer_commits_and_bumps_versions(bed):
    """Figure 14, steps 11-12: T7 validates; state moves to v4/v3 analogue."""
    proposal = transfer_proposal(bed, "T7")
    tx = bed.make_transaction(proposal, bed.endorse_everywhere(proposal))
    block = Block.create(1, GENESIS_HASH, [tx])
    bed.deliver(block)
    assert bed.notifications["T7"] is TxOutcome.COMMITTED
    state = bed.peers[0].channels["ch0"].state
    assert state.get_value("BalA") == 70
    assert state.get_value("BalB") == 80
    assert state.get_version("BalA") == Version(1, 0)


def test_malicious_t8_detected_by_signature_check(bed):
    """Figure 14, step 10: the client packs a forged write set; the honest
    endorser's signature no longer matches and T8 is invalid."""
    proposal = transfer_proposal(bed, "T8", amount=70)
    replies = bed.endorse_everywhere(proposal)
    honest_rwset = replies[0].endorsement.rwset
    assert honest_rwset.writes == {"BalA": 30, "BalB": 120}
    # The malicious client/peer pair swap in WS = {BalA: 100, BalB: 120}.
    forged = honest_rwset.copy()
    forged.record_write("BalA", 100)
    tx = bed.make_transaction(proposal, replies)
    tx.rwset = forged
    block = Block.create(1, GENESIS_HASH, [tx])
    bed.deliver(block)
    assert bed.notifications["T8"] is TxOutcome.ABORT_POLICY
    state = bed.peers[0].channels["ch0"].state
    assert state.get_value("BalA") == 100  # untouched
    assert state.get_value("BalB") == 50


def test_stale_t9_fails_serializability_check(bed):
    """Figure 14, step 13: T9 read BalA/BalB at the old versions while T7
    already committed; T9's write set is discarded."""
    t7_proposal = transfer_proposal(bed, "T7")
    t7 = bed.make_transaction(t7_proposal, bed.endorse_everywhere(t7_proposal))
    # T9 simulates against the same initial state (before T7 commits).
    t9_proposal = transfer_proposal(bed, "T9", amount=100)
    t9 = bed.make_transaction(t9_proposal, bed.endorse_everywhere(t9_proposal))
    assert t9.rwset.writes == {"BalA": 0, "BalB": 150}
    # T7 and T9 end up in the same block, T7 first.
    block = Block.create(1, GENESIS_HASH, [t7, t9])
    bed.deliver(block)
    assert bed.notifications["T7"] is TxOutcome.COMMITTED
    assert bed.notifications["T9"] is TxOutcome.ABORT_MVCC
    state = bed.peers[0].channels["ch0"].state
    assert state.get_value("BalA") == 70
    assert state.get_value("BalB") == 80


def test_block_with_mixed_validity_fully_appended(bed):
    """Figure 14, step 14: the block is appended with validity flags."""
    t7_proposal = transfer_proposal(bed, "T7")
    t7 = bed.make_transaction(t7_proposal, bed.endorse_everywhere(t7_proposal))
    t9_proposal = transfer_proposal(bed, "T9", amount=100)
    t9 = bed.make_transaction(t9_proposal, bed.endorse_everywhere(t9_proposal))
    block = Block.create(1, GENESIS_HASH, [t7, t9])
    bed.deliver(block)
    ledger = bed.peers[0].channels["ch0"].ledger
    assert ledger.height == 1
    committed_block = ledger.block(1)
    assert committed_block.is_valid("T7") is True
    assert committed_block.is_valid("T9") is False


def test_endorsement_mismatch_detected_client_side(bed):
    """A tampering endorser produces a differing rwset; no transaction can
    be formed (Section 2.2.1, footnote 3)."""

    def corrupt(rwset):
        bad = rwset.copy()
        bad.record_write("BalA", 100)
        return bad

    bed.peers[1].byzantine_rwset_hook = corrupt
    proposal = transfer_proposal(bed, "T8")
    replies = bed.endorse_everywhere(proposal)
    rwsets = [reply.endorsement.rwset for reply in replies]
    assert rwsets[0] != rwsets[1]
