"""Chaos harness: invariants under randomized fault schedules.

The chaos harness is the PR's safety argument: for any seeded fault
schedule — orderer crashes, peer crashes, partitions, lossy links — a
run must preserve the five chain invariants and still drain every
transaction. These tests pin that property over a seed sweep, check the
harness itself is deterministic, and prove the invariant checker can
actually fail (a tampered ledger is caught).
"""

import pytest

from repro.chaos import (
    INVARIANT_NAMES,
    chaos_config,
    check_invariants,
    generate_chaos_schedule,
    run_chaos,
    run_chaos_suite,
)
from repro.errors import ConfigError
from repro.fabric.network import FabricNetwork
from repro.sim.distributions import mix_seed
from repro.workloads.registry import make_workload

SUITE_SEEDS = range(20)


@pytest.fixture(scope="module")
def suite_reports():
    return run_chaos_suite(SUITE_SEEDS)


def test_twenty_seeds_pass_every_invariant(suite_reports):
    failures = [r for r in suite_reports if not r.passed]
    assert not failures, [
        (r.seed, r.details or r.invariants) for r in failures
    ]
    for report in suite_reports:
        assert set(report.invariants) == set(INVARIANT_NAMES)
        assert report.liveness and report.converged


def test_suite_actually_exercises_faults(suite_reports):
    # The sweep must include real chaos, not 20 quiet runs.
    assert any(r.leader_changes > 1 for r in suite_reports)
    assert any(r.messages_dropped > 0 for r in suite_reports)
    assert any(r.txs_reproposed > 0 for r in suite_reports)
    assert all(r.committed > 0 and r.blocks > 0 for r in suite_reports)


def test_chaos_run_is_deterministic_per_seed():
    first = run_chaos(7).to_dict()
    second = run_chaos(7).to_dict()
    assert first == second


def test_chaos_schedules_are_bounded_and_valid():
    for seed in range(10):
        duration = 1.5
        schedule = generate_chaos_schedule(seed, duration=duration)
        config = chaos_config(seed, duration, 3, schedule=schedule)
        config.validate()  # every generated schedule must be runnable
        horizon = 0.7 * duration
        for window in schedule.crashes + schedule.orderer_crashes:
            assert window.at >= 0.0
            assert window.at + window.duration <= horizon + 1e-9
        for window in schedule.partitions:
            assert window.at + window.duration <= horizon + 1e-9


def test_chaos_schedule_generation_is_deterministic():
    assert generate_chaos_schedule(5) == generate_chaos_schedule(5)
    assert generate_chaos_schedule(5) != generate_chaos_schedule(6)


def test_chaos_rejects_degenerate_parameters():
    with pytest.raises(ConfigError):
        generate_chaos_schedule(0, duration=0.5)
    with pytest.raises(ConfigError):
        generate_chaos_schedule(0, orderer_nodes=1)


def test_invariant_checker_catches_a_forked_peer():
    """Drop the tip block of a non-reference peer: single-chain and
    prefix-consistency must both report the divergence."""
    seed = 1
    config = chaos_config(seed, 1.5, 3)
    workload = make_workload(
        "smallbank", seed=mix_seed(seed, 0xC4A0, 3), num_users=200, s_value=1.0
    )
    network = FabricNetwork(config, workload)
    network.run(1.5, drain=4.0)

    healthy, details = check_invariants(network)
    assert all(healthy.values()), details

    victim = next(
        p for p in network.peers if p is not network.reference_peer
    )
    victim.channels["ch0"].ledger._blocks.pop()
    tampered, details = check_invariants(network)
    assert not tampered["single_chain"]
    assert any("ch0" in line for line in details)
