"""Tests of the Fabric++ optimization flags in isolation (Figure 10 logic)."""

from dataclasses import replace

import pytest

from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.fabric.metrics import TxOutcome
from repro.fabric.network import FabricNetwork
from repro.workloads.custom import CustomWorkload, CustomWorkloadParams

HOT_PARAMS = CustomWorkloadParams(
    num_accounts=1000,
    reads_writes=4,
    prob_hot_read=0.4,
    prob_hot_write=0.1,
    hot_set_fraction=0.01,
)


def config(**kwargs):
    defaults = dict(
        clients_per_channel=2,
        client_rate=150.0,
        client_window=128,
        batch=BatchCutConfig(max_transactions=128),
    )
    defaults.update(kwargs)
    return replace(FabricConfig(), **defaults)


def run(cfg, seed=3, duration=2.0):
    return FabricNetwork(cfg, CustomWorkload(HOT_PARAMS, seed=seed)).run(
        duration=duration
    )


def test_vanilla_produces_no_early_aborts():
    metrics = run(config())
    assert metrics.outcomes[TxOutcome.EARLY_ABORT_SIM] == 0
    assert metrics.outcomes[TxOutcome.EARLY_ABORT_CYCLE] == 0
    assert metrics.outcomes[TxOutcome.EARLY_ABORT_VERSION] == 0


def test_reordering_only_produces_cycle_aborts_only():
    metrics = run(config(reordering=True))
    assert metrics.outcomes[TxOutcome.EARLY_ABORT_CYCLE] > 0
    assert metrics.outcomes[TxOutcome.EARLY_ABORT_VERSION] == 0
    assert metrics.outcomes[TxOutcome.EARLY_ABORT_SIM] == 0


def test_early_abort_only_produces_no_cycle_aborts():
    metrics = run(
        config(early_abort_simulation=True, early_abort_ordering=True)
    )
    assert metrics.outcomes[TxOutcome.EARLY_ABORT_CYCLE] == 0


def test_reordering_reduces_mvcc_aborts():
    vanilla = run(config())
    reordered = run(config(reordering=True))
    assert (
        reordered.outcomes[TxOutcome.ABORT_MVCC]
        < vanilla.outcomes[TxOutcome.ABORT_MVCC]
    )


def test_each_optimization_alone_helps():
    """Figure 10's qualitative content at small scale: reordering alone
    and the combined system clearly beat vanilla. Early abort alone is
    roughly success-neutral at *unsaturated* load (it only relabels
    doomed transactions earlier); its standalone throughput win needs the
    saturated pipeline of the full-scale Figure 10 benchmark
    (benchmarks/bench_fig10_breakdown.py), where it shortens the
    staleness window."""
    vanilla = run(config()).successful
    only_reorder = run(config(reordering=True)).successful
    only_early = run(
        config(early_abort_simulation=True, early_abort_ordering=True)
    ).successful
    both = run(config().with_fabric_plus_plus()).successful
    assert only_reorder > vanilla
    assert only_early > 0.85 * vanilla
    assert both > vanilla


def test_combined_flags_commit_more_than_vanilla_by_margin():
    vanilla = run(config()).successful
    both = run(config().with_fabric_plus_plus()).successful
    assert both > 1.2 * vanilla


def test_committed_schedule_respects_reordering():
    """With reordering on, within-block MVCC aborts should be rare: the
    orderer already serialized the block."""
    metrics = run(config(reordering=True, early_abort_ordering=True))
    # Remaining MVCC aborts come only from cross-block staleness that the
    # within-block filter cannot see (single reader of a hot key).
    assert metrics.outcomes[TxOutcome.ABORT_MVCC] < metrics.successful
