"""Determinism guarantees of the sharded-channel layer.

Two contracts, mirroring the fault-layer golden tests:

1. **``channels=1`` is bit-identical.** The sharded subsystem dispatches
   single-channel configs to the untouched legacy runtime, so the golden
   metric hashes captured before ``repro.channels`` existed still hold —
   for vanilla Fabric and Fabric++ alike.
2. **Sharded sweeps are worker-count independent.** A channel-count
   sweep produces identical fleet metrics (per-channel rows and saga
   stats included) whether it runs in-process or across ``--jobs N``
   worker processes.
"""

from dataclasses import replace

import pytest

from repro.bench.harness import run_experiment
from repro.bench.results import metrics_to_dict
from repro.bench.spec import ExperimentSpec
from repro.bench.sweep import run_sweep

from tests.integration.test_fault_determinism import (
    GOLDEN_HASHES,
    golden_spec,
    metrics_hash,
)


@pytest.mark.parametrize("system", ["vanilla", "fabric++"])
def test_single_channel_config_is_bit_identical_to_golden(system):
    spec = golden_spec(system)
    config = replace(
        spec.config,
        channels=1,
        cross_channel_fraction=0.0,
        channel_cc_strategies=(),
    )
    assert not config.uses_sharding
    result = run_experiment(replace(spec, config=config))
    assert metrics_hash(result.metrics) == GOLDEN_HASHES[system]
    # The legacy runtime carries no fleet block at all.
    assert result.metrics.channels is None


def channel_sweep_specs():
    base = golden_spec("vanilla")
    specs = []
    for channels in (1, 2, 3):
        config = replace(
            base.config,
            channels=channels,
            cross_channel_fraction=0.25 if channels >= 2 else 0.0,
        )
        specs.append(
            ExperimentSpec(
                config=config,
                workload=base.workload,
                duration=1.5,
                drain=2.0,
                label=f"channels={channels}",
                params={"channels": channels},
            )
        )
    return specs


def test_channel_sweep_parallel_matches_serial():
    """--jobs N must not change sharded results (pickled round trip)."""
    serial = run_sweep(channel_sweep_specs(), jobs=1, cache=None)
    parallel = run_sweep(channel_sweep_specs(), jobs=2, cache=None)
    assert list(serial) == list(parallel)
    for left, right in zip(serial.values(), parallel.values()):
        assert metrics_to_dict(left.metrics) == metrics_to_dict(right.metrics)
        if left.params["channels"] >= 2:
            fleet = left.metrics.channels
            assert fleet is not None
            assert len(fleet.per_channel) == left.params["channels"]
            assert fleet.saga.started > 0
