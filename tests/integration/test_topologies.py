"""Integration tests across topologies and endorsement policies."""

from dataclasses import replace

import pytest

from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.fabric.metrics import TxOutcome
from repro.fabric.network import FabricNetwork
from repro.fabric.policy import AnyOrg, OutOf, RequireOrg
from repro.workloads.blank import BlankWorkload
from repro.workloads.custom import CustomWorkload, CustomWorkloadParams


def config(**kwargs):
    defaults = dict(
        clients_per_channel=1,
        client_rate=100.0,
        client_window=64,
        batch=BatchCutConfig(max_transactions=32),
    )
    defaults.update(kwargs)
    return replace(FabricConfig(), **defaults)


def workload(seed=0):
    return CustomWorkload(
        CustomWorkloadParams(num_accounts=300, hot_set_fraction=0.05), seed=seed
    )


def test_three_org_network():
    network = FabricNetwork(config(num_orgs=3), workload())
    metrics = network.run(duration=1.0)
    assert metrics.successful > 0
    assert network.orgs == ["OrgA", "OrgB", "OrgC"]
    # Default policy requires all three orgs to endorse.
    ledger = network.reference_peer.channels["ch0"].ledger
    for block in ledger:
        for tx in block.transactions:
            assert tx.endorsing_orgs == frozenset(network.orgs)


def test_single_org_single_peer():
    network = FabricNetwork(
        config(num_orgs=1, peers_per_org=1), BlankWorkload()
    )
    metrics = network.run(duration=1.0)
    assert metrics.successful > 0
    assert metrics.failed == 0


def test_out_of_policy_endorses_subset():
    policy = OutOf(2, ["OrgA", "OrgB", "OrgC"])
    network = FabricNetwork(config(num_orgs=3), workload(), policy=policy)
    metrics = network.run(duration=1.0)
    assert metrics.successful > 0
    ledger = network.reference_peer.channels["ch0"].ledger
    for block in ledger:
        for tx in block.transactions:
            # Clients collect the cheapest satisfying set: two orgs.
            assert len(tx.endorsing_orgs) == 2
            assert policy.satisfied_by(tx.endorsing_orgs)


def test_any_org_policy_single_endorsement():
    policy = AnyOrg("OrgA", "OrgB")
    network = FabricNetwork(config(), workload(), policy=policy)
    metrics = network.run(duration=1.0)
    assert metrics.successful > 0
    ledger = network.reference_peer.channels["ch0"].ledger
    endorsement_counts = {
        len(tx.endorsements)
        for block in ledger
        for tx in block.transactions
    }
    assert endorsement_counts == {1}


def test_single_org_policy_in_two_org_network():
    policy = RequireOrg("OrgB")
    network = FabricNetwork(config(), workload(), policy=policy)
    metrics = network.run(duration=1.0)
    assert metrics.successful > 0
    ledger = network.reference_peer.channels["ch0"].ledger
    for block in ledger:
        for tx in block.transactions:
            assert tx.endorsing_orgs == frozenset({"OrgB"})


def test_byzantine_endorser_blocks_progress_under_and_policy():
    """If one org's peers tamper, endorsements mismatch and no
    transaction can be formed."""
    network = FabricNetwork(config(peers_per_org=1), workload())

    def corrupt(rwset):
        bad = rwset.copy()
        bad.record_write("evil", 666)
        return bad

    for peer in network.peers_by_org["OrgB"]:
        peer.byzantine_rwset_hook = corrupt
    metrics = network.run(duration=1.0)
    assert metrics.successful == 0
    assert metrics.outcomes[TxOutcome.ENDORSEMENT_MISMATCH] > 0


def test_byzantine_org_harmless_under_any_policy():
    """Under OR(OrgA, OrgB), clients only ask one org; with round-robin
    selection the honest org's endorsements still commit."""
    policy = AnyOrg("OrgA")
    network = FabricNetwork(config(peers_per_org=1), workload(), policy=policy)

    def corrupt(rwset):
        bad = rwset.copy()
        bad.record_write("evil", 666)
        return bad

    for peer in network.peers_by_org["OrgB"]:
        peer.byzantine_rwset_hook = corrupt
    metrics = network.run(duration=1.0)
    assert metrics.successful > 0
    assert metrics.outcomes[TxOutcome.ENDORSEMENT_MISMATCH] == 0


def test_more_peers_per_org():
    network = FabricNetwork(config(peers_per_org=3), workload())
    metrics = network.run(duration=1.0)
    assert metrics.successful > 0
    assert len(network.peers) == 6


def test_round_robin_endorser_load_balancing():
    network = FabricNetwork(config(peers_per_org=2), BlankWorkload())
    network.run(duration=1.0, drain=5.0)
    ledger = network.reference_peer.channels["ch0"].ledger
    endorsers = [
        endorsement.endorser
        for block in ledger
        for tx in block.transactions
        for endorsement in tx.endorsements
    ]
    counts = {name: endorsers.count(name) for name in set(endorsers)}
    assert len(counts) == 4  # every peer endorsed something
    values = sorted(counts.values())
    assert values[0] >= 0.8 * values[-1]  # balanced within 20%


def test_fabricpp_wins_regardless_of_policy():
    for policy in (None, AnyOrg("OrgA", "OrgB")):
        vanilla = FabricNetwork(
            config(clients_per_channel=2), workload(seed=9), policy=policy
        ).run(duration=1.5)
        plus = FabricNetwork(
            config(clients_per_channel=2).with_fabric_plus_plus(),
            workload(seed=9),
            policy=policy,
        ).run(duration=1.5)
        assert plus.successful >= vanilla.successful
