"""Backpressure end to end: admission, retry, shed, and serialisation."""

from dataclasses import replace

import pytest

from repro.bench.results import (
    config_from_dict,
    config_to_dict,
    metrics_from_dict,
    metrics_to_dict,
)
from repro.core.batch_cutter import BatchCutConfig
from repro.errors import ConfigError
from repro.fabric.config import BackpressureConfig, FabricConfig
from repro.fabric.metrics import OverloadStats, TxOutcome
from repro.fabric.network import FabricNetwork
from repro.traffic import ArrivalProcess
from repro.workloads.registry import make_workload

BOUNDED = BackpressureConfig(
    orderer_queue_limit=128,
    endorse_queue_limit=48,
    delivery_backlog_limit=4,
    client_retries=2,
)


def overload_config(rate: float = 900.0, **overrides) -> FabricConfig:
    base = dict(
        batch=BatchCutConfig(max_transactions=64),
        clients_per_channel=2,
        client_rate=rate,
        traffic=ArrivalProcess(kind="poisson"),
        backpressure=BOUNDED,
        seed=11,
    )
    base.update(overrides)
    return replace(FabricConfig(), **base)


def run(config: FabricConfig, duration: float = 1.0, drain: float = 3.0):
    workload = make_workload(
        "smallbank", seed=11, num_users=5000, prob_write=0.95, s_value=0.0
    )
    return FabricNetwork(config, workload).run(duration, drain=drain)


# -- admission and shedding -----------------------------------------------------


def test_default_config_attaches_no_overload_stats():
    metrics = run(overload_config(rate=100.0, backpressure=BackpressureConfig()))
    assert metrics.overload is None
    assert "overload" not in metrics.summary()


def test_sustained_overload_sheds_explicitly():
    metrics = run(overload_config())
    stats = metrics.overload
    assert stats is not None
    shed = metrics.outcomes.get(TxOutcome.OVERLOAD_REJECTED, 0)
    assert shed > 0
    assert stats.txs_shed == shed
    assert stats.client_retries > 0
    assert stats.endorse_rejections + stats.orderer_rejections > 0
    # Shedding is a resolution, not a leak: every fired proposal ends.
    assert metrics.resolved == metrics.fired
    assert metrics.summary()["overload"]["txs_shed"] == shed


def test_delivery_credit_catches_fabric_plus_plus_overload():
    """Fabric++'s lock-free endorsement never saturates; the validation
    backlog must propagate to admission through delivery credit."""
    metrics = run(overload_config().with_fabric_plus_plus())
    stats = metrics.overload
    assert stats.delivery_stall_seconds > 0.0
    assert stats.orderer_rejections > 0
    assert metrics.outcomes.get(TxOutcome.OVERLOAD_REJECTED, 0) > 0
    assert metrics.resolved == metrics.fired


def test_bounds_are_invisible_at_sustainable_load():
    bounded = run(overload_config(rate=120.0))
    unbounded = run(
        overload_config(rate=120.0, backpressure=BackpressureConfig())
    )
    assert bounded.outcomes.get(TxOutcome.OVERLOAD_REJECTED, 0) == 0
    # Same simulation modulo the (idle) admission bookkeeping.
    assert bounded.outcomes == unbounded.outcomes
    assert bounded.commit_latencies == unbounded.commit_latencies


def test_overloaded_runs_are_deterministic():
    first = run(overload_config())
    second = run(overload_config())
    assert metrics_to_dict(first) == metrics_to_dict(second)


# -- the resubmit_exhausted terminal outcome (satellite) ------------------------


def contended_config(**overrides) -> FabricConfig:
    base = dict(
        batch=BatchCutConfig(max_transactions=32),
        clients_per_channel=2,
        client_rate=120.0,
        seed=5,
    )
    base.update(overrides)
    return replace(FabricConfig(), **base)


def run_contended(config: FabricConfig):
    workload = make_workload(
        "smallbank", seed=5, num_users=200, prob_write=0.95, s_value=1.0
    )
    return FabricNetwork(config, workload).run(1.0, drain=3.0)


def test_resubmit_exhausted_is_a_dedicated_outcome():
    metrics = run_contended(
        contended_config(resubmit_failed=True, max_resubmits=1)
    )
    exhausted = metrics.outcomes.get(TxOutcome.RESUBMIT_EXHAUSTED, 0)
    assert exhausted > 0
    # The counter and the outcome count the same events, and the
    # exhausted intents are distinct from endorsement timeouts.
    assert metrics.fault_counters.get("resubmit_capped", 0) == exhausted
    assert metrics.outcomes.get(TxOutcome.ENDORSEMENT_TIMEOUT, 0) == 0
    assert metrics.resolved == metrics.fired


def test_uncapped_resubmission_never_exhausts():
    metrics = run_contended(
        contended_config(resubmit_failed=True, max_resubmits=None)
    )
    assert metrics.outcomes.get(TxOutcome.RESUBMIT_EXHAUSTED, 0) == 0
    assert metrics.fault_counters.get("resubmit_capped", 0) == 0


# -- serialisation --------------------------------------------------------------


def test_config_round_trips_traffic_and_backpressure():
    config = overload_config()
    rebuilt = config_from_dict(config_to_dict(config))
    assert rebuilt == config
    assert rebuilt.traffic == ArrivalProcess(kind="poisson")
    assert rebuilt.backpressure == BOUNDED


def test_metrics_round_trip_overload_stats():
    metrics = run(overload_config())
    snapshot = metrics_to_dict(metrics)
    assert "overload" in snapshot
    rebuilt = metrics_from_dict(snapshot)
    assert isinstance(rebuilt.overload, OverloadStats)
    assert rebuilt.overload == metrics.overload
    assert metrics_to_dict(rebuilt) == snapshot


def test_backpressure_validation():
    with pytest.raises(ConfigError):
        replace(
            FabricConfig(),
            backpressure=BackpressureConfig(orderer_queue_limit=-1),
        ).validate()
    with pytest.raises(ConfigError):
        replace(
            FabricConfig(),
            backpressure=BackpressureConfig(delivery_backlog_limit=-1),
        ).validate()
    with pytest.raises(ConfigError):
        replace(
            FabricConfig(),
            backpressure=BackpressureConfig(retry_backoff_base=0.0),
        ).validate()
    assert BackpressureConfig().is_off
    assert not BOUNDED.is_off
