"""Tests for per-phase latency breakdown and straggler peers."""

from dataclasses import replace

import pytest

from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.fabric.network import FabricNetwork
from repro.workloads.blank import BlankWorkload
from repro.workloads.custom import CustomWorkload, CustomWorkloadParams


def config(**kwargs):
    defaults = dict(
        clients_per_channel=1,
        client_rate=100.0,
        client_window=64,
        batch=BatchCutConfig(max_transactions=32),
    )
    defaults.update(kwargs)
    return replace(FabricConfig(), **defaults)


def workload(seed=0):
    return CustomWorkload(
        CustomWorkloadParams(num_accounts=300, hot_set_fraction=0.05), seed=seed
    )


# -- phase breakdown -----------------------------------------------------------


def test_phase_breakdown_present_after_run():
    metrics = FabricNetwork(config(), BlankWorkload()).run(duration=1.5)
    breakdown = metrics.phase_breakdown()
    assert breakdown is not None
    assert set(breakdown) == {"endorse", "order", "validate"}
    assert all(value >= 0 for value in breakdown.values())


def test_phase_breakdown_sums_to_total_latency():
    metrics = FabricNetwork(config(), BlankWorkload()).run(duration=1.5)
    breakdown = metrics.phase_breakdown()
    total = metrics.latency().average
    parts = sum(breakdown.values())
    assert parts == pytest.approx(total, rel=0.05)


def test_ordering_phase_dominates_at_low_rate():
    """At a low firing rate blocks are cut by the 1 s timeout, so time
    spent waiting in the orderer's batch dominates commit latency."""
    metrics = FabricNetwork(
        config(batch=BatchCutConfig(max_transactions=1024)), BlankWorkload()
    ).run(duration=3.0)
    breakdown = metrics.phase_breakdown()
    assert breakdown["order"] > breakdown["endorse"]
    assert breakdown["order"] > breakdown["validate"]


def test_phase_breakdown_none_without_commits():
    from repro.fabric.metrics import PipelineMetrics

    assert PipelineMetrics().phase_breakdown() is None


# -- stragglers ----------------------------------------------------------------


def test_straggler_endorser_raises_endorsement_latency():
    fast = FabricNetwork(config(), workload())
    fast_metrics = fast.run(duration=1.5)

    slow = FabricNetwork(config(), workload())
    # One peer of OrgB is 50x slower; every proposal endorsed by it waits.
    slow.peers_by_org["OrgB"][0].speed_factor = 50.0
    slow_metrics = slow.run(duration=1.5)

    fast_endorse = fast_metrics.phase_breakdown()["endorse"]
    slow_endorse = slow_metrics.phase_breakdown()["endorse"]
    assert slow_endorse > 2 * fast_endorse


def test_straggler_validator_does_not_break_consensus():
    """A slow non-reference peer lags but converges to the same chain."""
    network = FabricNetwork(config(), workload())
    laggard = network.peers[-1]
    assert not laggard.is_reference
    laggard.speed_factor = 10.0
    network.run(duration=1.0, drain=30.0)
    reference_ledger = network.reference_peer.channels["ch0"].ledger
    laggard_ledger = laggard.channels["ch0"].ledger
    assert laggard_ledger.height == reference_ledger.height
    assert laggard_ledger.tip_hash == reference_ledger.tip_hash


def test_straggler_default_is_nominal():
    network = FabricNetwork(config(), BlankWorkload())
    assert all(peer.speed_factor == 1.0 for peer in network.peers)
