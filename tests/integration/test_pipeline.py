"""End-to-end integration tests of the full simulate-order-validate-commit
pipeline driven by clients over the DES network."""

from dataclasses import replace

import pytest

from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.fabric.metrics import TxOutcome
from repro.fabric.network import FabricNetwork
from repro.workloads.blank import BlankWorkload
from repro.workloads.custom import CustomWorkload, CustomWorkloadParams
from repro.workloads.smallbank import SmallbankParams, SmallbankWorkload


def small_config(**kwargs):
    defaults = dict(
        clients_per_channel=2,
        client_rate=100.0,
        client_window=64,
        batch=BatchCutConfig(max_transactions=64),
    )
    defaults.update(kwargs)
    return replace(FabricConfig(), **defaults)


def small_workload(seed=0):
    return CustomWorkload(
        CustomWorkloadParams(num_accounts=500, hot_set_fraction=0.02), seed=seed
    )


def test_blank_workload_commits_everything():
    network = FabricNetwork(small_config(), BlankWorkload())
    metrics = network.run(duration=1.0)
    assert metrics.fired > 100
    assert metrics.successful == metrics.resolved
    assert metrics.failed == 0


def test_custom_workload_produces_conflicts():
    network = FabricNetwork(small_config(), small_workload())
    metrics = network.run(duration=1.5)
    assert metrics.successful > 0
    assert metrics.outcomes[TxOutcome.ABORT_MVCC] > 0


def test_all_fired_proposals_reach_terminal_state_after_drain():
    network = FabricNetwork(small_config(), small_workload())
    metrics = network.run(duration=1.0, drain=5.0)
    assert metrics.resolved == metrics.fired


def test_all_peers_converge_to_same_state():
    network = FabricNetwork(small_config(), small_workload())
    network.run(duration=1.0, drain=5.0)
    states = [peer.channels["ch0"].state for peer in network.peers]
    reference = states[0]
    for state in states[1:]:
        assert len(state) == len(reference)
        assert state.last_block_id == reference.last_block_id
        for key, entry in reference.items():
            assert state.get(key).value == entry.value
            assert state.get(key).version == entry.version


def test_all_peers_have_identical_ledgers():
    network = FabricNetwork(small_config(), small_workload())
    network.run(duration=1.0, drain=5.0)
    ledgers = [peer.channels["ch0"].ledger for peer in network.peers]
    heights = {ledger.height for ledger in ledgers}
    assert heights == {ledgers[0].height}
    assert ledgers[0].height > 0
    for ledger in ledgers:
        assert ledger.verify_chain()
        assert ledger.tip_hash == ledgers[0].tip_hash


def test_ledger_contains_valid_and_invalid_transactions():
    network = FabricNetwork(small_config(), small_workload())
    metrics = network.run(duration=1.0, drain=5.0)
    ledger = network.reference_peer.channels["ch0"].ledger
    validity = [
        valid
        for block in ledger
        for valid in block.validity.values()
    ]
    assert any(validity)
    if metrics.outcomes[TxOutcome.ABORT_MVCC]:
        assert not all(validity)


def test_deterministic_runs_with_same_seed():
    a = FabricNetwork(small_config(), small_workload(seed=1)).run(duration=1.0)
    b = FabricNetwork(small_config(), small_workload(seed=1)).run(duration=1.0)
    assert a.summary() == b.summary()


def test_different_seeds_differ():
    config_a = small_config()
    config_b = replace(small_config(), seed=99)
    a = FabricNetwork(config_a, small_workload(seed=1)).run(duration=1.0)
    b = FabricNetwork(config_b, small_workload(seed=1)).run(duration=1.0)
    assert a.summary() != b.summary()


def test_fabricpp_improves_successful_throughput():
    """The headline claim, end to end, on a contended workload."""
    hot = CustomWorkloadParams(
        num_accounts=500,
        reads_writes=4,
        prob_hot_read=0.4,
        prob_hot_write=0.1,
        hot_set_fraction=0.02,
    )
    vanilla = FabricNetwork(
        small_config(), CustomWorkload(hot, seed=2)
    ).run(duration=2.0)
    fabricpp = FabricNetwork(
        small_config().with_fabric_plus_plus(), CustomWorkload(hot, seed=2)
    ).run(duration=2.0)
    assert fabricpp.successful > vanilla.successful


def test_smallbank_runs_end_to_end():
    workload = SmallbankWorkload(SmallbankParams(num_users=200), seed=0)
    network = FabricNetwork(small_config(), workload)
    metrics = network.run(duration=1.0)
    assert metrics.successful > 0


def test_multiple_channels_isolated_state():
    config = small_config(num_channels=2, clients_per_channel=1)
    network = FabricNetwork(config, lambda i: small_workload(seed=i))
    network.run(duration=1.0, drain=5.0)
    assert set(network.channels) == {"ch0", "ch1"}
    peer = network.reference_peer
    assert peer.channels["ch0"].ledger.height > 0
    assert peer.channels["ch1"].ledger.height > 0
    # Chains are independent.
    assert (
        peer.channels["ch0"].ledger.tip_hash
        != peer.channels["ch1"].ledger.tip_hash
    )


def test_client_window_backpressure():
    """A tiny window throttles firing below the nominal rate."""
    config = small_config(client_window=4, client_rate=1000.0)
    network = FabricNetwork(config, small_workload())
    metrics = network.run(duration=1.0)
    assert metrics.fired < 1000  # nominal would be 2000 (2 clients)


def test_resubmission_refires_failed_proposals():
    config = small_config(resubmit_failed=True)
    network = FabricNetwork(config, small_workload())
    metrics = network.run(duration=1.0, drain=5.0)
    # Resubmissions add fired proposals beyond the nominal rate budget.
    nominal = int(2 * 100 * 1.0)
    assert metrics.fired > nominal


def test_latency_measured_for_commits():
    network = FabricNetwork(small_config(), small_workload())
    metrics = network.run(duration=1.0)
    latency = metrics.latency()
    assert latency is not None
    assert 0 < latency.minimum <= latency.average <= latency.maximum
    # Sub-second block cutting bounds commit latency from below by the
    # network hops; from above by batch delay + validation.
    assert latency.maximum < 5.0


def test_invalid_configuration_rejected():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        FabricNetwork(small_config(clients_per_channel=0), BlankWorkload())


def test_policy_must_reference_known_orgs():
    from repro.errors import ConfigError
    from repro.fabric.policy import AllOrgs

    with pytest.raises(ConfigError):
        FabricNetwork(
            small_config(), BlankWorkload(), policy=AllOrgs("OrgA", "OrgZ")
        )


def test_topology_report():
    network = FabricNetwork(small_config(), BlankWorkload())
    topology = network.topology()
    assert topology.orgs == ["OrgA", "OrgB"]
    assert len(topology.peer_names) == 4
    assert topology.channels == ["ch0"]
    assert topology.clients_per_channel == 2


def test_zero_duration_rejected():
    from repro.errors import ConfigError

    network = FabricNetwork(small_config(), BlankWorkload())
    with pytest.raises(ConfigError):
        network.run(duration=0)
