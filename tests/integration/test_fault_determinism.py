"""Determinism guarantees of the fault-injection layer.

Two contracts, both load-bearing for the sweep engine's result cache:

1. **Healthy runs are bit-identical to the pre-fault code base.** With an
   all-zero :class:`FaultSchedule` the network builds no fault machinery,
   schedules no extra simulation events and draws no extra randomness, so
   the metrics hash to the exact golden values captured before the fault
   layer existed.
2. **Fault runs are exactly reproducible.** The same config and seed
   produce identical metrics, fault counters and event logs on every
   repeat — in-process or across sweep worker processes.
"""

import hashlib
import json

import pytest

from repro.bench.harness import run_experiment
from repro.bench.results import metrics_to_dict
from repro.bench.spec import ExperimentSpec
from repro.bench.sweep import run_sweep
from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.faults import CrashWindow, FaultSchedule, StallWindow
from repro.workloads.registry import WorkloadRef

#: The metric fields hashed for the golden healthy-path check. They cover
#: every outcome, every latency sample and every commit time, so any
#: behavioural drift — one extra event, one extra random draw — changes
#: the hash.
GOLDEN_FIELDS = (
    "outcomes",
    "commit_latencies",
    "outcome_times",
    "phase_latencies",
    "fired",
    "blocks_committed",
    "block_sizes",
    "duration",
)

#: SHA-256 of the golden-spec metrics, captured on the code base *before*
#: the fault-injection layer was merged. A healthy (all-zero schedule)
#: run must still produce these exact bytes.
GOLDEN_HASHES = {
    "vanilla": "a2528118c256d537149e53d1affbbc1e0b661b8a6168813d01d92b8028e0169e",
    "fabric++": "af5aa4819a3fbb0356b040d63f2b48d9e476a17bacc3a6e0351881b44fbc42d2",
}


def golden_spec(system: str) -> ExperimentSpec:
    config = FabricConfig(
        batch=BatchCutConfig(max_transactions=64),
        clients_per_channel=2,
        client_rate=120.0,
        seed=7,
    )
    config = (
        config.with_fabric_plus_plus()
        if system == "fabric++"
        else config.with_vanilla()
    )
    workload = WorkloadRef(
        "smallbank",
        {"num_users": 500, "prob_write": 0.95, "s_value": 1.0},
        seed=7,
    )
    return ExperimentSpec(
        config=config, workload=workload, duration=2.0, drain=2.0, label=system
    )


def metrics_hash(metrics) -> str:
    data = metrics_to_dict(metrics)
    core = {field: data[field] for field in GOLDEN_FIELDS}
    return hashlib.sha256(
        json.dumps(core, sort_keys=True).encode()
    ).hexdigest()


@pytest.mark.parametrize("system", ["vanilla", "fabric++"])
def test_zero_fault_schedule_is_bit_identical_to_golden(system):
    result = run_experiment(golden_spec(system))
    assert result.config.faults.is_zero
    assert metrics_hash(result.metrics) == GOLDEN_HASHES[system]
    # And the healthy summary carries no fault block at all.
    assert "faults" not in result.metrics.summary()
    assert result.metrics.fault_counters == {}
    assert result.metrics.fault_events == []


def faulty_spec(seed: int = 7) -> ExperimentSpec:
    spec = golden_spec("vanilla")
    faults = FaultSchedule(
        crashes=(CrashWindow(peer="peer1.OrgA", at=0.4, duration=0.6),),
        stalls=(StallWindow(at=1.1, duration=0.15),),
        drop_probability=0.03,
        jitter_mean=0.001,
        endorsement_timeout=0.05,
    )
    config = FabricConfig(
        batch=spec.config.batch,
        clients_per_channel=2,
        client_rate=120.0,
        seed=seed,
        endorsement_policy="outof:1",
        faults=faults,
    )
    return ExperimentSpec(
        config=config,
        workload=spec.workload,
        duration=2.0,
        drain=3.0,
        label="faulty",
    )


def test_fault_run_is_deterministic_across_repeats():
    first = run_experiment(faulty_spec())
    second = run_experiment(faulty_spec())
    assert metrics_hash(first.metrics) == metrics_hash(second.metrics)
    assert first.metrics.fault_counters == second.metrics.fault_counters
    assert first.metrics.fault_events == second.metrics.fault_events
    # The run actually injected something.
    assert first.metrics.fault_counters.get("crashes") == 1
    assert first.metrics.fault_counters.get("recoveries") == 1


def test_fault_run_is_deterministic_across_worker_processes():
    """--jobs N must not change fault-run results (pickled round trip)."""
    specs = [faulty_spec(), faulty_spec(seed=11)]
    serial = run_sweep(specs, jobs=1, cache=None)
    parallel = run_sweep(specs, jobs=2, cache=None)
    for left, right in zip(serial.values(), parallel.values()):
        assert metrics_hash(left.metrics) == metrics_hash(right.metrics)
        assert left.metrics.fault_counters == right.metrics.fault_counters
        assert left.metrics.fault_events == right.metrics.fault_events


def test_fault_schedule_changes_cache_fingerprint():
    """Fault knobs are part of the experiment identity: a faulty spec
    must never collide with the healthy spec in the result cache."""
    from repro.bench.cache import spec_fingerprint

    healthy = golden_spec("vanilla")
    faulty = faulty_spec()
    assert spec_fingerprint(healthy) != spec_fingerprint(faulty)
