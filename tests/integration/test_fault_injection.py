"""Integration tests for the fault-injection runtime.

Covers the paper-adjacent robustness story: a crashed endorser must not
take the pipeline down when the endorsement policy tolerates it, the
orderer resumes after stall windows, metrics surface what happened, and
the resubmission cap stops failed intents from cycling forever.
"""

from dataclasses import replace

import pytest

from repro.bench.harness import run_experiment, run_experiment_with_network
from repro.bench.spec import ExperimentSpec
from repro.core.batch_cutter import BatchCutConfig
from repro.errors import ConfigError
from repro.fabric.config import FabricConfig
from repro.fabric.metrics import TxOutcome
from repro.fabric.network import FabricNetwork
from repro.faults import CrashWindow, FaultSchedule, StallWindow
from repro.workloads.registry import WorkloadRef

WORKLOAD = WorkloadRef(
    "smallbank", {"num_users": 500, "prob_write": 0.95, "s_value": 0.0}, seed=3
)


def base_config(**overrides) -> FabricConfig:
    fields = {
        "batch": BatchCutConfig(max_transactions=64),
        "clients_per_channel": 2,
        "client_rate": 150.0,
        "seed": 3,
        **overrides,
    }
    return replace(FabricConfig(), **fields)


def spec_for(config: FabricConfig, drain: float = 3.0) -> ExperimentSpec:
    return ExperimentSpec(
        config=config, workload=WORKLOAD, duration=2.0, drain=drain, label="t"
    )


def crash_window(peer: str = "peer1.OrgA") -> FaultSchedule:
    return FaultSchedule(
        crashes=(CrashWindow(peer=peer, at=0.5, duration=0.7),),
        endorsement_timeout=0.05,
    )


def test_crashed_endorser_with_outof_keeps_committing():
    config = base_config(
        endorsement_policy="outof:1", faults=crash_window()
    )
    result = run_experiment(spec_for(config))
    assert result.successful_tps > 0
    counters = result.metrics.fault_counters
    assert counters.get("crashes") == 1
    assert counters.get("recoveries") == 1
    # While the peer was down, clients committed from the survivors.
    assert counters.get("degraded_endorsements", 0) > 0


def test_crashed_endorser_under_and_policy_times_out_then_recovers():
    """AND(OrgA, OrgB) cannot degrade: proposals hitting the dead peer
    retry with backoff and may time out, but the pipeline survives and
    throughput returns after recovery."""
    config = base_config(faults=crash_window())
    result = run_experiment(spec_for(config))
    assert result.successful_tps > 0
    counters = result.metrics.fault_counters
    assert counters.get("endorsements_refused", 0) > 0
    # Retries round-robin to the org's healthy peer, so most proposals
    # still make it; the counters prove the robust path engaged.
    assert counters.get("endorsement_retries", 0) > 0


def test_fault_events_are_logged_in_order():
    config = base_config(
        endorsement_policy="outof:1", faults=crash_window()
    )
    result = run_experiment(spec_for(config))
    events = result.metrics.fault_events
    kinds = [kind for _time, kind, _subject in events]
    assert kinds.index("crash") < kinds.index("recover")
    assert "catchup_complete" in kinds
    times = [time for time, _kind, _subject in events]
    assert times == sorted(times)


def test_fault_summary_surfaces_in_row():
    config = base_config(
        endorsement_policy="outof:1", faults=crash_window()
    )
    result = run_experiment(spec_for(config))
    row = result.row()
    assert "faults" in row
    assert row["faults"]["crashes"] == 1
    assert 0.0 <= row["faults"]["commit_availability"] <= 1.0


def test_orderer_stall_pauses_then_resumes():
    stall = FaultSchedule(stalls=(StallWindow(at=0.8, duration=0.5),))
    result = run_experiment(spec_for(base_config(faults=stall)))
    assert result.successful_tps > 0
    assert result.metrics.fault_counters.get("orderer_stalls") == 1
    # No commit lands inside the stall window at the reference peer
    # (blocks cut before the stall may still commit shortly after 0.8).
    commit_times = [
        time
        for time, outcome in result.metrics.outcome_times
        if outcome is TxOutcome.COMMITTED
    ]
    assert any(time > 1.3 for time in commit_times), "pipeline resumed"


def test_reference_peer_cannot_be_crashed():
    config = base_config(faults=crash_window(peer="peer0.OrgA"))
    with pytest.raises(ConfigError):
        FabricNetwork(config, WORKLOAD.build())


def test_unknown_peer_in_crash_schedule_rejected():
    config = base_config(faults=crash_window(peer="peer9.OrgZ"))
    with pytest.raises(ConfigError):
        FabricNetwork(config, WORKLOAD.build())


def test_recovered_peer_rejoins_gossip_at_tail():
    config = base_config(
        endorsement_policy="outof:1", faults=crash_window()
    )
    _result, network = run_experiment_with_network(spec_for(config))
    order = network._gossip_order["OrgA"]
    assert [peer.name for peer in order] == ["peer0.OrgA", "peer1.OrgA"]
    assert not network._peer_by_name["peer1.OrgA"].crashed


def test_endorsement_timeout_outcome_when_no_policy_can_be_met():
    """Crash every OrgB peer: AND(OrgA, OrgB) is unsatisfiable while they
    are down, so proposals exhaust their retries and resolve as
    endorsement_timeout instead of hanging."""
    faults = FaultSchedule(
        crashes=(
            CrashWindow(peer="peer0.OrgB", at=0.2, duration=1.0),
            CrashWindow(peer="peer1.OrgB", at=0.2, duration=1.0),
        ),
        endorsement_timeout=0.05,
        max_endorsement_retries=2,
    )
    result = run_experiment(spec_for(base_config(faults=faults)))
    outcomes = result.metrics.outcomes
    assert outcomes[TxOutcome.ENDORSEMENT_TIMEOUT] > 0
    assert result.metrics.fault_counters.get("endorsements_failed", 0) > 0
    assert result.successful_tps > 0  # before the crash and after recovery


def test_resubmit_cap_limits_retry_storms():
    """With resubmission on and everything failing (unsatisfiable policy
    while both OrgB peers are down), capped intents are counted instead
    of cycling forever."""
    faults = FaultSchedule(
        crashes=(
            CrashWindow(peer="peer0.OrgB", at=0.1, duration=1.5),
            CrashWindow(peer="peer1.OrgB", at=0.1, duration=1.5),
        ),
        endorsement_timeout=0.02,
        max_endorsement_retries=0,
    )
    config = base_config(
        faults=faults,
        resubmit_failed=True,
        max_resubmits=2,
        client_rate=50.0,
    )
    result = run_experiment(spec_for(config, drain=4.0))
    assert result.metrics.fault_counters.get("resubmit_capped", 0) > 0


def test_max_resubmits_validation():
    with pytest.raises(ConfigError):
        base_config(max_resubmits=-1).validate()
    base_config(max_resubmits=None).validate()
    base_config(max_resubmits=0).validate()


def test_lossy_network_still_commits():
    faults = FaultSchedule(
        drop_probability=0.1,
        jitter_mean=0.002,
        endorsement_timeout=0.05,
    )
    config = base_config(endorsement_policy="outof:1", faults=faults)
    result = run_experiment(spec_for(config, drain=4.0))
    assert result.successful_tps > 0
    assert result.metrics.fault_counters.get("messages_dropped", 0) > 0
    # Dropped block deliveries were eventually redelivered: the
    # reference peer still validated every cut block.
    assert result.metrics.blocks_committed > 0
