"""Application-level invariants: Smallbank money conservation.

Whatever the pipeline aborts or reorders, committed state must evolve as
if the committed transactions ran serially: transfers conserve the total
balance, and amalgamate moves funds without creating or destroying any.
"""

from dataclasses import replace

import pytest

from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.fabric.network import FabricNetwork
from repro.sim.distributions import Rng
from repro.workloads.base import Invocation
from repro.workloads.smallbank import (
    SmallbankParams,
    SmallbankWorkload,
    checking_key,
    savings_key,
)


class TransfersOnly(SmallbankWorkload):
    """Smallbank restricted to send_payment + amalgamate + query.

    Every modifying operation conserves the total balance, so the sum
    over all accounts is a run-long invariant.
    """

    def next_invocation(self, rng: Rng) -> Invocation:
        draw = rng.random()
        source = self._customer(rng)
        if draw < 0.4:
            destination = self._customer(rng)
            if destination == source:
                destination = (source + 1) % self.params.num_users
            return Invocation(
                "send_payment", (source, destination, rng.randint(1, 50))
            )
        if draw < 0.8:
            return Invocation("amalgamate", (source,))
        return Invocation("query", (source,))


def total_balance(state, num_users):
    return sum(
        (state.get_value(checking_key(user)) or 0)
        + (state.get_value(savings_key(user)) or 0)
        for user in range(num_users)
    )


@pytest.mark.parametrize("fabricpp", [False, True])
def test_transfers_conserve_total_balance(fabricpp):
    num_users = 200
    params = SmallbankParams(num_users=num_users, s_value=1.5)
    workload = TransfersOnly(params, seed=6)
    initial_total = sum(workload.initial_state().values())

    config = replace(
        FabricConfig(),
        clients_per_channel=2,
        client_rate=150.0,
        batch=BatchCutConfig(max_transactions=64),
    )
    if fabricpp:
        config = config.with_fabric_plus_plus()
    network = FabricNetwork(config, workload)
    metrics = network.run(duration=2.0, drain=5.0)
    assert metrics.successful > 0

    for peer in network.peers:
        state = peer.channels["ch0"].state
        assert total_balance(state, num_users) == initial_total


@pytest.mark.parametrize("fabricpp", [False, True])
def test_no_negative_savings_after_amalgamate(fabricpp):
    """Amalgamate zeroes savings; committed state never goes negative in
    savings under the transfer-only mix."""
    num_users = 100
    workload = TransfersOnly(
        SmallbankParams(num_users=num_users, s_value=1.0), seed=8
    )
    config = replace(
        FabricConfig(),
        clients_per_channel=1,
        client_rate=100.0,
        batch=BatchCutConfig(max_transactions=32),
    )
    if fabricpp:
        config = config.with_fabric_plus_plus()
    network = FabricNetwork(config, workload)
    network.run(duration=1.5, drain=5.0)
    state = network.reference_peer.channels["ch0"].state
    for user in range(num_users):
        assert (state.get_value(savings_key(user)) or 0) >= 0
