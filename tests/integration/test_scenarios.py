"""The named scenario suite: invariants across seeds, sweepability, parity."""

import pytest

from repro.bench.results import metrics_to_dict
from repro.bench.sweep import run_sweep
from repro.errors import ConfigError
from repro.scenarios import (
    get_scenario,
    run_scenario,
    scenario_names,
    scenario_specs,
)

SEEDS = range(10)


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_holds_invariants_across_seeds(name):
    """Every scenario, ten seeds, five safety invariants plus liveness."""
    for seed in SEEDS:
        report = run_scenario(name, seed)
        assert report.passed, (name, seed, report.details)
        assert report.fired > 0, (name, seed)
        # One saga is one intent with three terminal facts: two
        # per-channel legs plus the fleet-level saga outcome, so a
        # half-committed saga adds one resolution beyond its legs.
        assert (
            report.resolved == report.fired + report.saga_half_committed
        ), (name, seed)


@pytest.mark.parametrize("name", ("overload-shed", "flash-crowd"))
def test_overload_scenarios_hold_for_fabric_plus_plus(name):
    for seed in range(3):
        report = run_scenario(name, seed, system="fabric++")
        assert report.passed, (name, seed, report.details)


def test_overload_shed_scenario_actually_sheds():
    report = run_scenario("overload-shed", seed=0)
    assert report.shed > 0
    assert report.client_retries > 0
    # Degradation is graceful: most of the sustainable-load goodput
    # survives the 5x overload.
    calm = run_scenario("poisson-steady", seed=0)
    assert report.committed > 0.5 * calm.committed


def test_unknown_scenario_lists_the_catalogue():
    with pytest.raises(ConfigError, match="calm-baseline"):
        get_scenario("nope")


def test_reports_are_deterministic():
    first = run_scenario("flash-crowd", seed=4)
    second = run_scenario("flash-crowd", seed=4)
    assert first.to_dict() == second.to_dict()


def test_scenario_specs_are_sweepable():
    """Scenario specs are data-only: cacheable and process-portable."""
    specs = scenario_specs("resubmit-storm", range(3))
    assert len(specs) == 3
    assert all(spec.is_cacheable for spec in specs)
    assert len({spec.resolved_config().seed for spec in specs}) == 3


def test_scenario_runs_identical_serial_and_parallel():
    """The satellite parity property: ``--jobs N`` never changes results."""
    specs = scenario_specs("poisson-steady", range(2))
    serial = run_sweep(specs, jobs=1, cache=None)
    parallel = run_sweep(specs, jobs=2, cache=None)
    for left, right in zip(serial.values(), parallel.values()):
        assert metrics_to_dict(left.metrics) == metrics_to_dict(right.metrics)
