"""End-to-end fuzz: the peer's validation equals the independent oracle.

Random blocks of forged-but-honestly-signed transactions are delivered to
real peers; the set of transactions the validator commits must equal what
an independent, direct re-statement of Fabric's validation rule predicts.
This ties the production pipeline to the oracle used throughout the
micro-benchmarks.
"""

from typing import Dict, List, Optional

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import bcc_reorder
from repro.fabric.rwset import ReadWriteSet
from repro.fabric.transaction import Transaction
from repro.ledger.block import Block
from repro.ledger.ledger import GENESIS_HASH
from repro.ledger.state_db import Version
from repro.testing import count_valid_in_order
from tests.fabric.conftest import TestBed

KEYS = [f"acc{i}" for i in range(6)]
GENESIS = Version(0, 0)


@st.composite
def block_rwsets(draw):
    """Random rwsets whose reads are either fresh (genesis) or stale."""
    count = draw(st.integers(min_value=1, max_value=8))
    rwsets = []
    for _ in range(count):
        rwset = ReadWriteSet()
        for key in draw(st.lists(st.sampled_from(KEYS), max_size=3, unique=True)):
            stale = draw(st.booleans())
            rwset.record_read(key, Version(9, 9) if stale else GENESIS)
        for key in draw(st.lists(st.sampled_from(KEYS), max_size=3, unique=True)):
            rwset.record_write(key, draw(st.integers(0, 99)))
        rwsets.append(rwset)
    return rwsets


def oracle_validity(rwsets: List[ReadWriteSet]) -> List[bool]:
    """Directly re-state the validation rule; returns per-tx validity."""
    effective: Dict[str, Optional[Version]] = {key: GENESIS for key in KEYS}
    flags = []
    for position, rwset in enumerate(rwsets):
        valid = all(
            effective.get(key) == version
            for key, version in rwset.reads.items()
        )
        flags.append(valid)
        if valid:
            for key in rwset.writes:
                effective[key] = Version(1, position)
    return flags


@given(block_rwsets())
@settings(max_examples=40, deadline=None)
def test_peer_validation_matches_oracle(rwsets):
    bed = TestBed(initial={key: 0 for key in KEYS})
    transactions = []
    for index, rwset in enumerate(rwsets):
        proposal = bed.proposal(f"t{index}")
        endorsements = [
            bed.forge_endorsement(proposal, rwset, peer) for peer in bed.peers
        ]
        transactions.append(
            Transaction(f"t{index}", proposal, rwset, endorsements)
        )
    block = Block.create(1, GENESIS_HASH, transactions)
    bed.deliver(block)
    expected = oracle_validity(rwsets)
    actual = [block.is_valid(f"t{index}") for index in range(len(rwsets))]
    assert actual == expected


@given(block_rwsets())
@settings(max_examples=40, deadline=None)
def test_all_peers_agree_on_validity(rwsets):
    bed = TestBed(initial={key: 0 for key in KEYS})
    transactions = []
    for index, rwset in enumerate(rwsets):
        proposal = bed.proposal(f"t{index}")
        endorsements = [
            bed.forge_endorsement(proposal, rwset, peer) for peer in bed.peers
        ]
        transactions.append(
            Transaction(f"t{index}", proposal, rwset, endorsements)
        )
    block = Block.create(1, GENESIS_HASH, transactions)
    bed.deliver(block)
    states = [peer.channels["ch0"].state for peer in bed.peers]
    for key in KEYS:
        assert states[0].get(key).value == states[1].get(key).value
        assert states[0].get(key).version == states[1].get(key).version


@given(block_rwsets())
@settings(max_examples=60, deadline=None)
def test_bcc_schedule_fully_validates(rwsets):
    """Every transaction BCC schedules must survive the oracle replay
    (when all reads start fresh; stale-read txs are normalised first)."""
    fresh = []
    for rwset in rwsets:
        clone = ReadWriteSet()
        for key in rwset.reads:
            clone.record_read(key, Version(1, 0))
        for key, value in rwset.writes.items():
            clone.record_write(key, value)
        fresh.append(clone)
    schedule, aborted = bcc_reorder(fresh)
    assert sorted(schedule + aborted) == list(range(len(fresh)))
    assert count_valid_in_order(fresh, schedule) == len(schedule)
