"""Tests for gossip block dissemination and latency percentiles."""

from dataclasses import replace

import pytest

from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.fabric.metrics import LatencyStats
from repro.fabric.network import FabricNetwork
from repro.workloads.blank import BlankWorkload
from repro.workloads.custom import CustomWorkload, CustomWorkloadParams


def small_config(**kwargs):
    defaults = dict(
        clients_per_channel=1,
        client_rate=100.0,
        client_window=64,
        batch=BatchCutConfig(max_transactions=32),
    )
    defaults.update(kwargs)
    return replace(FabricConfig(), **defaults)


# -- gossip dissemination --------------------------------------------------------


def test_leader_peers_receive_blocks_before_gossip_peers():
    """Org leaders get blocks from the orderer directly; the second peer
    of each org receives them one gossip hop later."""
    config = small_config()
    network = FabricNetwork(config, BlankWorkload())
    arrival_times = {}

    original_deliver = {}
    for peer in network.peers:
        original_deliver[peer.name] = peer.deliver_block

        def spy(channel, block, peer=peer):
            arrival_times.setdefault(block.block_id, {})[peer.name] = (
                network.env.now
            )
            original_deliver[peer.name](channel, block)

        peer.deliver_block = spy

    network.run(duration=1.0)
    assert arrival_times, "no blocks were distributed"
    hop = config.costs.gossip_hop
    for per_peer in arrival_times.values():
        assert per_peer["peer1.OrgA"] - per_peer["peer0.OrgA"] == pytest.approx(hop)
        assert per_peer["peer1.OrgB"] - per_peer["peer0.OrgB"] == pytest.approx(hop)


def test_gossip_preserves_block_order_and_state_convergence():
    workload = CustomWorkload(
        CustomWorkloadParams(num_accounts=300, hot_set_fraction=0.05), seed=1
    )
    network = FabricNetwork(small_config(clients_per_channel=2), workload)
    network.run(duration=1.5, drain=5.0)
    reference = network.peers[0].channels["ch0"]
    for peer in network.peers[1:]:
        channel_state = peer.channels["ch0"]
        assert channel_state.ledger.height == reference.ledger.height
        assert channel_state.ledger.tip_hash == reference.ledger.tip_hash
        assert channel_state.state.last_block_id == reference.state.last_block_id


# -- latency percentiles ------------------------------------------------------------


def test_percentiles_ordering():
    samples = [float(i) for i in range(1, 101)]
    stats = LatencyStats.from_samples(samples)
    assert stats.p50 <= stats.p95 <= stats.p99 <= stats.maximum
    assert stats.minimum <= stats.p50
    assert 49 <= stats.p50 <= 52
    assert 94 <= stats.p95 <= 97
    assert 98 <= stats.p99 <= 100


def test_percentiles_single_sample():
    stats = LatencyStats.from_samples([0.5])
    assert stats.p50 == stats.p95 == stats.p99 == 0.5


def test_percentiles_from_run():
    network = FabricNetwork(small_config(), BlankWorkload())
    metrics = network.run(duration=2.0)
    stats = metrics.latency()
    assert stats is not None
    assert stats.minimum <= stats.p50 <= stats.p99 <= stats.maximum
