"""Shared fixtures for the whole test-suite.

The builder/oracle helpers live in :mod:`repro.testing` so the benchmark
suite can share them; this conftest re-exports them for convenient
``from tests.conftest import ...`` and provides fixtures.
"""

from __future__ import annotations

import pytest

from repro.testing import (  # noqa: F401 (re-exported for tests)
    V1,
    V2,
    count_valid_in_order,
    paper_table1_rwsets,
    paper_table3_rwsets,
    rwset,
)


@pytest.fixture
def table3():
    return paper_table3_rwsets()


@pytest.fixture
def table1():
    return paper_table1_rwsets()
