"""Regression tests pinning the ``run(until=...)`` / ``step()`` boundary.

The pre-overhaul engine compared ``next_time > until`` *before* stepping,
so an event landing exactly at ``until`` fired — but a chain of
same-instant events it spawned could be cut off mid-instant by an
unlucky queue order. The rewritten loop drains heap-and-deque per
instant, so the contract is now explicit: everything scheduled at
``until`` (including events first scheduled while handling that very
instant) is processed, the clock ends exactly at ``until``, and
``step()`` on an empty schedule raises instead of blowing up inside
``heappop``.
"""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment


def test_event_exactly_at_until_fires():
    env = Environment()
    log = []

    def proc():
        yield 5.0
        log.append(env.now)

    env.process(proc())
    env.run(until=5.0)
    assert log == [5.0]
    assert env.now == 5.0


def test_same_instant_chain_at_until_completes():
    env = Environment()
    log = []

    def tail(tag):
        yield 0  # same-instant hop spawned while handling t=until
        log.append((tag, env.now))

    def proc():
        yield 5.0
        log.append(("head", env.now))
        env.process(tail("a"))
        env.process(tail("b"))
        yield 0
        log.append(("head-again", env.now))

    env.process(proc())
    env.run(until=5.0)
    # The whole instant resolves, in deterministic trigger order, even
    # though every one of these events sits exactly on the horizon. The
    # tails bootstrap before head's zero-sleep fires, so their own
    # zero-sleeps queue up behind it: head-again resumes first.
    assert log == [
        ("head", 5.0),
        ("head-again", 5.0),
        ("a", 5.0),
        ("b", 5.0),
    ]


def test_event_beyond_until_does_not_fire_and_clock_stops_at_until():
    env = Environment()
    log = []

    def proc():
        yield 5.000001
        log.append(env.now)

    env.process(proc())
    env.run(until=5.0)
    assert log == []
    assert env.now == 5.0
    # The later event is still scheduled; a further run picks it up.
    env.run()
    assert log == [5.000001]


def test_clock_advances_to_until_when_queue_drains_early():
    env = Environment()

    def proc():
        yield 1.0

    env.process(proc())
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_into_the_past_rejected():
    env = Environment()

    def proc():
        yield 5.0

    env.process(proc())
    env.run()
    assert env.now == 5.0
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_resumed_run_continues_from_boundary():
    env = Environment()
    log = []

    def ticker():
        while True:
            yield 1.0
            log.append(env.now)

    env.process(ticker())
    env.run(until=2.5)
    assert log == [1.0, 2.0]
    env.run(until=4.0)
    assert log == [1.0, 2.0, 3.0, 4.0]


def test_step_processes_one_event_and_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield 1.5
        log.append(env.now)

    env.process(proc())
    env.step()  # bootstrap: starts the process at t=0
    assert env.now == 0.0
    assert log == []
    env.step()  # the sleep expiry
    assert env.now == 1.5
    assert log == [1.5]


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()

    def proc():
        yield 1.0

    env.process(proc())
    env.run()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_reports_next_heap_instant():
    env = Environment()
    assert env.peek() == float("inf")

    def proc():
        yield 3.0

    env.process(proc())
    env.run()
    assert env.peek() == float("inf")
