"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Environment, Interrupt


def test_clock_starts_at_zero():
    assert Environment().now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(1.5)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [1.5]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_timeout_carries_value():
    env = Environment()
    got = []

    def proc():
        value = yield env.timeout(1, value="hello")
        got.append(value)

    env.process(proc())
    env.run()
    assert got == ["hello"]


def test_events_fire_in_time_order():
    env = Environment()
    log = []

    def proc(delay, tag):
        yield env.timeout(delay)
        log.append(tag)

    env.process(proc(3, "c"))
    env.process(proc(1, "a"))
    env.process(proc(2, "b"))
    env.run()
    assert log == ["a", "b", "c"]


def test_simultaneous_events_fifo():
    env = Environment()
    log = []

    def proc(tag):
        yield env.timeout(1)
        log.append(tag)

    for tag in ["first", "second", "third"]:
        env.process(proc(tag))
    env.run()
    assert log == ["first", "second", "third"]


def test_run_until_stops_clock():
    env = Environment()

    def proc():
        yield env.timeout(10)

    env.process(proc())
    env.run(until=4)
    assert env.now == 4
    env.run(until=20)
    assert env.now == 20


def test_run_into_past_rejected():
    env = Environment()
    env.run(until=5)
    with pytest.raises(SimulationError):
        env.run(until=1)


def test_process_waits_on_process():
    env = Environment()
    log = []

    def child():
        yield env.timeout(2)
        return "child-result"

    def parent():
        result = yield env.process(child())
        log.append((env.now, result))

    env.process(parent())
    env.run()
    assert log == [(2, "child-result")]


def test_process_return_value_via_event():
    env = Environment()

    def proc():
        yield env.timeout(1)
        return 42

    handle = env.process(proc())
    env.run()
    assert handle.triggered
    assert handle.value == 42


def test_event_succeed_resumes_waiter():
    env = Environment()
    gate = env.event()
    log = []

    def waiter():
        value = yield gate
        log.append(value)

    def firer():
        yield env.timeout(3)
        gate.succeed("go")

    env.process(waiter())
    env.process(firer())
    env.run()
    assert log == ["go"]


def test_event_double_trigger_rejected():
    env = Environment()
    gate = env.event()
    gate.succeed()
    with pytest.raises(SimulationError):
        gate.succeed()


def test_event_failure_propagates_into_process():
    env = Environment()
    gate = env.event()
    caught = []

    def proc():
        try:
            yield gate
        except ValueError as error:
            caught.append(str(error))

    env.process(proc())
    gate.fail(ValueError("boom"))
    env.run()
    assert caught == ["boom"]


def test_process_exception_propagates_to_waiter():
    env = Environment()
    caught = []

    def child():
        yield env.timeout(1)
        raise RuntimeError("child died")

    def parent():
        try:
            yield env.process(child())
        except RuntimeError as error:
            caught.append(str(error))

    env.process(parent())
    env.run()
    assert caught == ["child died"]


def test_all_of_waits_for_everything():
    env = Environment()
    results = []

    def proc():
        values = yield env.all_of(
            [env.timeout(1, value="a"), env.timeout(3, value="b")]
        )
        results.append((env.now, values))

    env.process(proc())
    env.run()
    assert results == [(3, ["a", "b"])]


def test_all_of_empty_fires_immediately():
    env = Environment()
    results = []

    def proc():
        values = yield env.all_of([])
        results.append((env.now, values))

    env.process(proc())
    env.run()
    assert results == [(0, [])]


def test_interrupt_raises_inside_process():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    handle = env.process(victim())

    def attacker():
        yield env.timeout(2)
        handle.interrupt("preempted")

    env.process(attacker())
    env.run()
    assert log == [(2, "preempted")]


def test_interrupt_completed_process_is_noop():
    env = Environment()

    def quick():
        yield env.timeout(1)

    handle = env.process(quick())
    env.run()
    handle.interrupt("late")  # must not raise
    env.run()


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(5)
    assert env.peek() == 5
    env.run()
    assert env.peek() == float("inf")


def test_is_alive_transitions():
    env = Environment()

    def proc():
        yield env.timeout(1)

    handle = env.process(proc())
    assert handle.is_alive
    env.run()
    assert not handle.is_alive


def test_immediate_process_without_yield():
    env = Environment()

    def proc():
        return "done"
        yield  # pragma: no cover - makes it a generator

    handle = env.process(proc())
    env.run()
    assert handle.value == "done"
