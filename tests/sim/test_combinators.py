"""Tests for the first-class event combinators (AllOf / AnyOf).

The combinators are the public replacement for callback wiring: processes
compose events with ``a & b`` / ``a | b`` (or ``env.all_of`` /
``env.any_of``) and simply yield the result. These tests pin the
aggregation semantics, failure propagation, the deterministic
``(time, sequence)`` resolution of simultaneous firings, interrupt
behaviour while waiting on a combinator, and — via Hypothesis — that a
randomly composed timeout/combinator DAG replays bit-identically.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Environment, Interrupt


# -- AllOf aggregation -----------------------------------------------------------


def test_all_of_collects_values_in_member_order():
    env = Environment()
    results = []

    def proc():
        values = yield env.all_of(
            [env.timeout(3, value="slow"), env.timeout(1, value="fast")]
        )
        results.append((env.now, values))

    env.process(proc())
    env.run()
    assert results == [(3, ["slow", "fast"])]


def test_and_operator_builds_and_flattens_all_of():
    env = Environment()
    a, b, c = env.timeout(1, "a"), env.timeout(2, "b"), env.timeout(3, "c")
    joined = a & b & c
    assert isinstance(joined, AllOf)
    # (a & b) & c flattens into one three-member join, not a nested pair.
    assert joined.events == [a, b, c]
    results = []

    def proc():
        results.append((yield joined))

    env.process(proc())
    env.run()
    assert results == [["a", "b", "c"]]


def test_all_of_empty_fires_immediately():
    env = Environment()
    results = []

    def proc():
        results.append((yield env.all_of([])))
        results.append(env.now)

    env.process(proc())
    env.run()
    assert results == [[], 0]


def test_all_of_includes_already_processed_members():
    env = Environment()
    early = env.event()
    early.succeed("early")
    results = []

    def proc():
        yield 1.0  # let `early` fire before the join is even built
        values = yield early & env.timeout(1, value="late")
        results.append((env.now, values))

    env.process(proc())
    env.run()
    assert results == [(2.0, ["early", "late"])]


# -- AnyOf aggregation -----------------------------------------------------------


def test_any_of_value_and_winner_identification():
    env = Environment()
    slow, fast = env.timeout(5, value="slow"), env.timeout(1, value="fast")
    race = slow | fast
    assert isinstance(race, AnyOf)
    results = []

    def proc():
        value = yield race
        results.append((env.now, race.first_index, race.first_event, value))

    env.process(proc())
    env.run()
    assert results == [(1, 1, fast, "fast")]


def test_or_operator_flattens():
    env = Environment()
    a, b, c = env.timeout(3), env.timeout(2), env.timeout(1)
    race = a | b | c
    assert race.events == [a, b, c]


def test_any_of_empty_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.any_of([])


def test_cross_environment_member_rejected():
    env_a, env_b = Environment(), Environment()
    foreign = env_b.timeout(1)
    with pytest.raises(SimulationError):
        env_a.all_of([env_a.timeout(1), foreign])
    with pytest.raises(SimulationError):
        env_a.any_of([foreign])


# -- failure propagation ---------------------------------------------------------


def test_all_of_fails_with_first_member_failure():
    env = Environment()
    gate = env.event()
    caught = []

    def proc():
        try:
            yield env.timeout(10) & gate
        except ValueError as error:
            caught.append((env.now, str(error)))

    def failer():
        yield 1.0
        gate.fail(ValueError("member broke"))

    env.process(proc())
    env.process(failer())
    env.run()
    # The join fails as soon as the member does — not at t=10.
    assert caught == [(1.0, "member broke")]


def test_any_of_fails_when_winner_failed():
    env = Environment()
    gate = env.event()
    caught = []

    def proc():
        try:
            yield gate | env.timeout(10)
        except ValueError:
            caught.append(env.now)

    env.process(proc())
    gate.fail(ValueError("winner broke"))
    env.run()
    assert caught == [0.0]


def test_any_of_ignores_losers_even_failing_ones():
    env = Environment()
    gate = env.event()
    results = []

    def proc():
        results.append((yield env.timeout(1, value="ok") | gate))

    def failer():
        yield 2.0
        gate.fail(ValueError("too late to matter"))

    env.process(proc())
    env.process(failer())
    env.run()
    assert results == ["ok"]


# -- simultaneous firings resolve by (time, sequence) ----------------------------


def test_any_of_same_instant_winner_is_creation_order():
    env = Environment()
    # Both fire at t=1; the one scheduled first holds the smaller
    # sequence number and therefore wins deterministically.
    first, second = env.timeout(1, value="first"), env.timeout(1, value="second")
    race = first | second
    results = []

    def proc():
        value = yield race
        results.append((value, race.first_index))

    env.process(proc())
    env.run()
    assert results == [("first", 0)]


def test_all_of_same_instant_members_fire_once_both_processed():
    env = Environment()
    results = []

    def proc():
        values = yield env.all_of(
            [env.timeout(1, value="a"), env.timeout(1, value="b")]
        )
        results.append((env.now, values))

    env.process(proc())
    env.run()
    assert results == [(1, ["a", "b"])]


# -- interrupts while waiting on a combinator ------------------------------------


def test_interrupt_while_waiting_on_combinator():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(10) & env.timeout(20)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))
            yield 1.0
            log.append((env.now, "continued"))

    handle = env.process(victim())

    def attacker():
        yield 2.0
        handle.interrupt("cancel")

    env.process(attacker())
    env.run()
    # The join still fires at t=20 but must not resume the victim again.
    assert log == [(2.0, "cancel"), (3.0, "continued")]
    assert not handle.is_alive


def test_interrupted_race_leaves_members_running():
    env = Environment()
    marks = []

    def member():
        yield 5.0
        marks.append(env.now)
        return "done"

    handle_member = env.process(member())

    def victim():
        try:
            yield handle_member | env.timeout(30)
        except Interrupt:
            marks.append("interrupted")

    handle = env.process(victim())

    def attacker():
        yield 1.0
        handle.interrupt()

    env.process(attacker())
    env.run()
    # The member process is unaffected by the waiter's interrupt.
    assert marks == ["interrupted", 5.0]
    assert handle_member.value == "done"


# -- property: random combinator DAGs replay identically -------------------------

DELAYS = st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0])


@st.composite
def dag_recipes(draw):
    """A recipe for a random event DAG: each node is a timeout or a
    combinator over strictly earlier nodes (so the graph is acyclic)."""
    size = draw(st.integers(min_value=1, max_value=8))
    nodes = []
    for index in range(size):
        if index == 0:
            nodes.append(("timeout", draw(DELAYS)))
            continue
        kind = draw(st.sampled_from(["timeout", "all", "any"]))
        if kind == "timeout":
            nodes.append(("timeout", draw(DELAYS)))
        else:
            members = draw(
                st.lists(
                    st.integers(min_value=0, max_value=index - 1),
                    min_size=1,
                    max_size=3,
                    unique=True,
                )
            )
            nodes.append((kind, members))
    return nodes


def _run_dag(recipe):
    """Build and run the DAG once; return the full dispatch trace."""
    env = Environment()
    trace = []
    events = []
    for spec in recipe:
        kind, payload = spec
        if kind == "timeout":
            events.append(env.timeout(payload, value=payload))
        elif kind == "all":
            events.append(env.all_of([events[i] for i in payload]))
        else:
            events.append(env.any_of([events[i] for i in payload]))

    def waiter(index, event):
        value = yield event
        trace.append(("resume", index, env.now, repr(value)))

    for index, event in enumerate(events):
        env.process(waiter(index, event))

    env.set_trace_hook(
        lambda time, event: trace.append(("fire", time, type(event).__name__))
    )
    env.run()
    return trace


@settings(max_examples=50, deadline=None)
@given(recipe=dag_recipes())
def test_random_combinator_dag_replays_identically(recipe):
    first = _run_dag(recipe)
    second = _run_dag(recipe)
    assert first == second
    # Every waiter resumed exactly once: combinators never double-fire.
    resumes = [entry[1] for entry in first if entry[0] == "resume"]
    assert sorted(resumes) == list(range(len(recipe)))
