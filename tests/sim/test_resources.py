"""Unit tests for Resource, RWLock, and Store."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Environment
from repro.sim.resources import Resource, RWLock, Store


# -- Resource --------------------------------------------------------------------


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resource_grants_up_to_capacity():
    env = Environment()
    cpu = Resource(env, capacity=2)
    log = []

    def worker(tag):
        yield cpu.request()
        log.append(("start", tag, env.now))
        yield env.timeout(10)
        cpu.release()
        log.append(("end", tag, env.now))

    for tag in "abc":
        env.process(worker(tag))
    env.run()
    starts = {tag: t for kind, tag, t in log if kind == "start"}
    assert starts["a"] == 0
    assert starts["b"] == 0
    assert starts["c"] == 10  # had to wait for a slot


def test_resource_fifo_order():
    env = Environment()
    cpu = Resource(env, capacity=1)
    order = []

    def worker(tag):
        yield cpu.request()
        order.append(tag)
        yield env.timeout(1)
        cpu.release()

    for tag in ["first", "second", "third"]:
        env.process(worker(tag))
    env.run()
    assert order == ["first", "second", "third"]


def test_resource_release_without_request():
    env = Environment()
    cpu = Resource(env, capacity=1)
    with pytest.raises(SimulationError):
        cpu.release()


def test_resource_use_helper():
    env = Environment()
    cpu = Resource(env, capacity=1)
    log = []

    def worker(tag):
        yield from cpu.use(5)
        log.append((tag, env.now))

    env.process(worker("a"))
    env.process(worker("b"))
    env.run()
    assert log == [("a", 5), ("b", 10)]
    assert cpu.in_use == 0


def test_resource_counters():
    env = Environment()
    cpu = Resource(env, capacity=1)

    def holder():
        yield cpu.request()
        yield env.timeout(5)
        cpu.release()

    def observer():
        yield env.timeout(1)
        assert cpu.in_use == 1
        assert cpu.queue_length == 1

    def waiter():
        yield cpu.request()
        cpu.release()

    env.process(holder())
    env.process(waiter())
    env.process(observer())
    env.run()
    assert cpu.in_use == 0
    assert cpu.queue_length == 0


# -- RWLock ----------------------------------------------------------------------


def test_rwlock_readers_share():
    env = Environment()
    lock = RWLock(env)
    active = []

    def reader(tag):
        yield lock.acquire_read()
        active.append(tag)
        yield env.timeout(5)
        lock.release_read()

    env.process(reader("r1"))
    env.process(reader("r2"))
    env.run(until=1)
    assert sorted(active) == ["r1", "r2"]
    assert lock.readers == 2


def test_rwlock_writer_excludes_readers():
    env = Environment()
    lock = RWLock(env)
    log = []

    def writer():
        yield lock.acquire_write()
        log.append(("w-start", env.now))
        yield env.timeout(10)
        lock.release_write()
        log.append(("w-end", env.now))

    def reader():
        yield env.timeout(1)  # arrive while the writer holds the lock
        yield lock.acquire_read()
        log.append(("r-start", env.now))
        lock.release_read()

    env.process(writer())
    env.process(reader())
    env.run()
    assert ("w-start", 0) in log
    assert ("r-start", 10) in log


def test_rwlock_writer_waits_for_readers():
    env = Environment()
    lock = RWLock(env)
    log = []

    def reader():
        yield lock.acquire_read()
        yield env.timeout(7)
        lock.release_read()

    def writer():
        yield env.timeout(1)
        yield lock.acquire_write()
        log.append(env.now)
        lock.release_write()

    env.process(reader())
    env.process(writer())
    env.run()
    assert log == [7]


def test_rwlock_waiting_writer_blocks_new_readers():
    """Writer preference: readers arriving behind a waiting writer queue up."""
    env = Environment()
    lock = RWLock(env)
    log = []

    def early_reader():
        yield lock.acquire_read()
        yield env.timeout(5)
        lock.release_read()

    def writer():
        yield env.timeout(1)
        yield lock.acquire_write()
        log.append(("writer", env.now))
        yield env.timeout(5)
        lock.release_write()

    def late_reader():
        yield env.timeout(2)
        yield lock.acquire_read()
        log.append(("late-reader", env.now))
        lock.release_read()

    env.process(early_reader())
    env.process(writer())
    env.process(late_reader())
    env.run()
    assert log == [("writer", 5), ("late-reader", 10)]


def test_rwlock_release_errors():
    env = Environment()
    lock = RWLock(env)
    with pytest.raises(SimulationError):
        lock.release_read()
    with pytest.raises(SimulationError):
        lock.release_write()


# -- Store -----------------------------------------------------------------------


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    store.put("item")
    got = []

    def getter():
        item = yield store.get()
        got.append(item)

    env.process(getter())
    env.run()
    assert got == ["item"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def getter():
        item = yield store.get()
        got.append((item, env.now))

    def putter():
        yield env.timeout(5)
        store.put("late")

    env.process(getter())
    env.process(putter())
    env.run()
    assert got == [("late", 5)]


def test_store_fifo_items():
    env = Environment()
    store = Store(env)
    for item in [1, 2, 3]:
        store.put(item)
    got = []

    def getter():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(getter())
    env.run()
    assert got == [1, 2, 3]


def test_store_fifo_getters():
    env = Environment()
    store = Store(env)
    got = []

    def getter(tag):
        item = yield store.get()
        got.append((tag, item))

    env.process(getter("first"))
    env.process(getter("second"))
    store.put("x")
    store.put("y")
    env.run()
    assert got == [("first", "x"), ("second", "y")]


def test_store_drain():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    assert store.drain() == [1, 2]
    assert len(store) == 0
