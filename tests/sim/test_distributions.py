"""Unit and statistical tests for the random distributions."""

import pytest

from repro.sim.distributions import Rng, ZipfSampler


def test_rng_deterministic_from_seed():
    a = Rng(7)
    b = Rng(7)
    assert [a.randint(0, 100) for _ in range(10)] == [
        b.randint(0, 100) for _ in range(10)
    ]


def test_rng_different_seeds_differ():
    a = [Rng(1).randint(0, 10**9) for _ in range(3)]
    b = [Rng(2).randint(0, 10**9) for _ in range(3)]
    assert a != b


def test_bernoulli_extremes():
    rng = Rng(0)
    assert not any(rng.bernoulli(0.0) for _ in range(100))
    assert all(rng.bernoulli(1.0) for _ in range(100))


def test_sample_distinct():
    rng = Rng(3)
    sample = rng.sample_distinct(100, 10)
    assert len(sample) == 10
    assert len(set(sample)) == 10
    assert all(0 <= x < 100 for x in sample)


def test_exponential_positive():
    rng = Rng(4)
    draws = [rng.exponential(0.5) for _ in range(100)]
    assert all(d > 0 for d in draws)
    assert 0.3 < sum(draws) / len(draws) < 0.8


def test_zipf_validation():
    with pytest.raises(ValueError):
        ZipfSampler(0, 1.0)
    with pytest.raises(ValueError):
        ZipfSampler(10, -0.5)


def test_zipf_s_zero_is_uniform():
    sampler = ZipfSampler(1000, 0.0, Rng(1))
    draws = [sampler.sample() for _ in range(20_000)]
    assert all(0 <= d < 1000 for d in draws)
    # Chi-square-ish sanity: the most popular item under uniformity over
    # 1000 bins with 20k draws should not exceed ~3x the expectation.
    counts = {}
    for d in draws:
        counts[d] = counts.get(d, 0) + 1
    assert max(counts.values()) < 60


def test_zipf_skew_concentrates_mass():
    sampler = ZipfSampler(1000, 2.0, Rng(2))
    draws = [sampler.sample() for _ in range(20_000)]
    counts = {}
    for d in draws:
        counts[d] = counts.get(d, 0) + 1
    top = max(counts.values()) / len(draws)
    # Under Zipf s=2 over 1000 items, the top item carries ~61% of mass.
    assert 0.55 < top < 0.68


def test_zipf_rank_probabilities_decrease():
    sampler = ZipfSampler(100, 1.0, Rng(0))
    probs = [sampler.probability_of_rank(r) for r in range(100)]
    assert all(a >= b for a, b in zip(probs, probs[1:]))
    assert abs(sum(probs) - 1.0) < 1e-9


def test_zipf_uniform_rank_probability():
    sampler = ZipfSampler(50, 0.0)
    assert sampler.probability_of_rank(0) == pytest.approx(1 / 50)


def test_zipf_single_item():
    sampler = ZipfSampler(1, 1.5, Rng(0))
    assert sampler.sample() == 0


def test_zipf_higher_skew_more_concentration():
    def top_share(s_value):
        sampler = ZipfSampler(500, s_value, Rng(5))
        draws = [sampler.sample() for _ in range(10_000)]
        counts = {}
        for d in draws:
            counts[d] = counts.get(d, 0) + 1
        return max(counts.values()) / len(draws)

    assert top_share(0.0) < top_share(1.0) < top_share(2.0)
