"""Tests for the sampling monitor."""

from dataclasses import replace

import pytest

from repro.core.batch_cutter import BatchCutConfig
from repro.errors import SimulationError
from repro.fabric.config import FabricConfig
from repro.fabric.network import FabricNetwork
from repro.sim.engine import Environment
from repro.sim.monitor import Sampler, attach_network_probes
from repro.workloads.blank import BlankWorkload


def test_interval_validation():
    with pytest.raises(SimulationError):
        Sampler(Environment(), interval=0)


def test_duplicate_probe_rejected():
    sampler = Sampler(Environment())
    sampler.watch("x", lambda: 1)
    with pytest.raises(SimulationError):
        sampler.watch("x", lambda: 2)


def test_sampling_cadence():
    env = Environment()
    sampler = Sampler(env, interval=0.5)
    counter = {"value": 0}

    def probe():
        counter["value"] += 1
        return counter["value"]

    sampler.watch("count", probe)
    sampler.start()
    env.run(until=2.0)
    times = [tick["t"] for tick in sampler.samples]
    assert times == [0.5, 1.0, 1.5, 2.0]
    assert sampler.series("count") == [1, 2, 3, 4]


def test_start_idempotent():
    env = Environment()
    sampler = Sampler(env, interval=1.0)
    sampler.watch("x", lambda: 7)
    sampler.start()
    sampler.start()
    env.run(until=3.0)
    assert len(sampler.samples) == 3  # not doubled


def test_statistics():
    env = Environment()
    sampler = Sampler(env, interval=1.0)
    values = iter([1.0, 5.0, 3.0])
    sampler.watch("x", lambda: next(values))
    sampler.start()
    env.run(until=3.0)
    assert sampler.peak("x") == 5.0
    assert sampler.average("x") == pytest.approx(3.0)


def test_empty_probe_statistics():
    sampler = Sampler(Environment())
    sampler.watch("never", lambda: 1)
    assert sampler.peak("never") == 0.0
    assert sampler.average("never") == 0.0


def test_summary_sorted_by_average():
    env = Environment()
    sampler = Sampler(env, interval=1.0)
    sampler.watch("low", lambda: 1.0)
    sampler.watch("high", lambda: 10.0)
    sampler.start()
    env.run(until=2.0)
    summary = sampler.summary()
    assert summary[0]["probe"] == "high"
    assert summary[0]["peak"] == 10.0


def test_network_probes_record_activity():
    config = replace(
        FabricConfig(),
        clients_per_channel=1,
        client_rate=100.0,
        batch=BatchCutConfig(max_transactions=32),
    )
    network = FabricNetwork(config, BlankWorkload())
    sampler = Sampler(network.env, interval=0.05)
    attach_network_probes(sampler, network)
    sampler.start()
    network.run(duration=1.0)
    assert sampler.samples
    # The orderer batch probe must have seen pending transactions.
    assert sampler.peak("orderer.ch0.batch") > 0
    # Peer CPUs were busy at some point.
    busy_probes = [name for name in ("peer0.OrgA.cpu_busy",) if sampler.peak(name) > 0]
    assert busy_probes


def test_raising_probe_is_skipped_and_recorded():
    """A probe that raises (e.g. it reads a peer that a fault schedule
    crashed) must not kill the sampler: the value is skipped for that
    tick, the failure is counted, and every other probe keeps sampling."""
    env = Environment()
    sampler = Sampler(env, interval=0.5)
    calls = {"good": 0}

    def good():
        calls["good"] += 1
        return float(calls["good"])

    def bad():
        raise RuntimeError("probe target crashed")

    sampler.watch("good", good)
    sampler.watch("bad", bad)
    sampler.start()
    env.run(until=2.0)

    assert len(sampler.samples) == 4
    assert sampler.series("good") == [1.0, 2.0, 3.0, 4.0]
    assert sampler.series("bad") == []  # skipped, never fabricated
    assert sampler.probe_errors == {"bad": 4}
    assert len(sampler.error_log) == 4
    time, name, message = sampler.error_log[0]
    assert time == 0.5 and name == "bad" and "probe target crashed" in message


def test_error_log_is_bounded():
    env = Environment()
    sampler = Sampler(env, interval=0.01)
    sampler.watch("bad", lambda: 1 / 0)
    sampler.start()
    env.run(until=2.0)
    assert sampler.probe_errors["bad"] > 100
    assert len(sampler.error_log) == 100


def test_sampler_forwards_counters_to_tracer():
    from repro.trace import Tracer

    env = Environment()
    tracer = Tracer()
    sampler = Sampler(env, interval=0.5, tracer=tracer)
    sampler.watch("queue", lambda: 7.0)
    sampler.start()
    env.run(until=1.6)
    assert tracer.counters == [(0.5, "queue", 7.0), (1.0, "queue", 7.0),
                               (1.5, "queue", 7.0)]
