"""Edge-case tests for the DES engine and resources."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Environment, Interrupt
from repro.sim.resources import Resource, RWLock, Store


def test_process_yielding_non_event_fails_process():
    env = Environment()

    def bad():
        yield "not an event"  # bare numbers are sleeps; this is not one

    handle = env.process(bad())
    env.run()
    assert handle.triggered
    assert handle._exception is not None


def test_bare_number_yield_is_a_sleep():
    env = Environment()
    log = []

    def proc():
        yield 2.5  # float sleep
        log.append(env.now)
        yield 2  # int sleep
        log.append(env.now)
        yield 0  # zero-delay sleep: same instant, after pending events
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [2.5, 4.5, 4.5]


def test_negative_bare_delay_fails_process():
    env = Environment()

    def bad():
        yield -1.0

    handle = env.process(bad())
    env.run()
    assert handle.triggered
    assert isinstance(handle._exception, SimulationError)


def test_interrupt_during_bare_delay_sleep():
    env = Environment()
    log = []

    def victim():
        try:
            yield 100.0
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))
            yield 1.0
            log.append((env.now, "continued"))

    handle = env.process(victim())

    def attacker():
        yield 2.0
        handle.interrupt("preempted")

    env.process(attacker())
    env.run()
    # The stale wakeup at t=100 must not resume the victim a second time.
    assert log == [(2.0, "preempted"), (3.0, "continued")]
    assert not handle.is_alive


def test_cross_environment_event_fails_process():
    env_a = Environment()
    env_b = Environment()
    gate = env_b.event()
    gate.succeed()

    def proc():
        yield gate

    handle = env_a.process(proc())
    env_a.run()
    assert handle.triggered
    assert isinstance(handle._exception, SimulationError)


def test_all_of_propagates_failure():
    env = Environment()
    gate = env.event()
    caught = []

    def proc():
        try:
            yield env.all_of([env.timeout(1), gate])
        except ValueError as error:
            caught.append(str(error))

    env.process(proc())
    gate.fail(ValueError("inner failure"))
    env.run()
    assert caught == ["inner failure"]


def test_interrupt_detaches_from_waited_event():
    env = Environment()
    gate = env.event()
    log = []

    def victim():
        try:
            yield gate
        except Interrupt:
            log.append("interrupted")
            yield env.timeout(1)
            log.append("continued")

    handle = env.process(victim())

    def attacker():
        yield env.timeout(1)
        handle.interrupt()
        # Firing the original event later must NOT resume the victim twice.
        gate.succeed("late")

    env.process(attacker())
    env.run()
    assert log == ["interrupted", "continued"]


def test_interrupt_while_holding_resource():
    env = Environment()
    cpu = Resource(env, capacity=1)
    log = []

    def holder():
        try:
            yield from cpu.use(100)
        except Interrupt:
            log.append(("interrupted", env.now))
        # `use` released the slot in its finally clause.

    def waiter():
        yield cpu.request()
        log.append(("acquired", env.now))
        cpu.release()

    handle = env.process(holder())

    def attacker():
        yield env.timeout(5)
        handle.interrupt()

    env.process(attacker())
    env.process(waiter())
    env.run()
    assert ("interrupted", 5) in log
    assert ("acquired", 5) in log  # slot recycled on interrupt


def test_resource_priority_bands():
    env = Environment()
    cpu = Resource(env, capacity=1)
    order = []

    def holder():
        yield from cpu.use(1)

    def request(tag, priority, delay):
        yield env.timeout(delay)
        yield cpu.request(priority)
        order.append(tag)
        cpu.release()

    env.process(holder())
    env.process(request("low", 10, 0.1))
    env.process(request("high", 0, 0.2))  # arrives later, served first
    env.run()
    assert order == ["high", "low"]


def test_resource_same_priority_fifo():
    env = Environment()
    cpu = Resource(env, capacity=1)
    order = []

    def holder():
        yield from cpu.use(1)

    def request(tag, delay):
        yield env.timeout(delay)
        yield cpu.request(5)
        order.append(tag)
        cpu.release()

    env.process(holder())
    env.process(request("first", 0.1))
    env.process(request("second", 0.2))
    env.run()
    assert order == ["first", "second"]


def test_rwlock_multiple_writers_queue():
    env = Environment()
    lock = RWLock(env)
    log = []

    def writer(tag, hold):
        yield lock.acquire_write()
        log.append((tag, env.now))
        yield env.timeout(hold)
        lock.release_write()

    env.process(writer("w1", 3))
    env.process(writer("w2", 2))
    env.run()
    assert log == [("w1", 0), ("w2", 3)]


def test_store_interleaved_put_get():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        while True:
            item = yield store.get()
            got.append((item, env.now))
            if item == "stop":
                return

    def producer():
        store.put("a")
        yield env.timeout(1)
        store.put("b")
        yield env.timeout(1)
        store.put("stop")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert [item for item, _ in got] == ["a", "b", "stop"]


def test_timeout_zero_fires_immediately_in_order():
    env = Environment()
    log = []

    def proc(tag):
        yield env.timeout(0)
        log.append(tag)

    env.process(proc("a"))
    env.process(proc("b"))
    env.run()
    assert log == ["a", "b"]
