"""Golden stream for :func:`repro.sim.distributions.mix_seed`.

The seed mixer replaced ``hash((seed, channel, client))`` because the
builtin hash of a *tuple of ints* is stable on CPython today but is not
a documented guarantee — and client RNG streams must never move between
interpreter builds. These literals pin the frozen implementation; they
must never be regenerated. A separate test checks that, on current
64-bit CPython, the frozen function still agrees with the builtin it
was cloned from — catching any accidental "re-sync" edit.
"""

from __future__ import annotations

import sys

import pytest

from repro.sim.distributions import Rng, mix_seed

#: Pinned outputs. Changing any of these rewires every client RNG stream
#: and therefore every golden metrics hash in the suite.
GOLDEN = {
    (): 750394491,
    (0,): 2087574872,
    (7,): 1272795442,
    (7, 0, 0): 493701517,
    (7, 0, 1): 113094886,
    (7, 1, 0): 157641936,
    (11, 2, 3): 1573682427,
    (2**63, -5): 791344212,
    (123456789, 987654321, 42): 1140403140,
}


def test_golden_stream_is_pinned():
    for parts, expected in GOLDEN.items():
        assert mix_seed(*parts) == expected, parts


@pytest.mark.skipif(
    sys.implementation.name != "cpython" or sys.hash_info.width != 64,
    reason="the frozen mixer clones 64-bit CPython tuple hashing",
)
def test_matches_builtin_hash_on_current_cpython():
    for parts in GOLDEN:
        assert mix_seed(*parts) == hash(parts) & 0x7FFFFFFF


def test_part_order_and_position_matter():
    assert mix_seed(7, 0, 1) != mix_seed(7, 1, 0)
    assert mix_seed(7, 0) != mix_seed(0, 7)
    assert len(set(GOLDEN.values())) == len(GOLDEN)


def test_result_seeds_an_rng():
    value = mix_seed(7, 0, 0)
    assert 0 <= value <= 0x7FFFFFFF
    stream_a = [Rng(value).random() for _ in range(5)]
    stream_b = [Rng(mix_seed(7, 0, 0)).random() for _ in range(5)]
    assert stream_a == stream_b


@pytest.mark.parametrize("bad", [True, False, 1.5, "7", None])
def test_non_int_parts_are_rejected(bad):
    with pytest.raises(TypeError):
        mix_seed(7, bad)
