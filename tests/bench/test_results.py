"""Tests for the unified ResultSet and its serialisation helpers."""

from dataclasses import replace

import pytest

from repro.bench.results import (
    ExperimentResult,
    ResultSet,
    config_from_dict,
    config_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.errors import ReproError
from repro.fabric.config import FabricConfig
from repro.fabric.metrics import PipelineMetrics, TxOutcome


def make_result(label, successes=10, failures=2, duration=2.0, params=None):
    metrics = PipelineMetrics()
    # Outcome times stay inside the measurement window so the windowed
    # throughput counts every recorded outcome.
    for index in range(successes):
        metrics.record_fired()
        metrics.record_outcome(
            TxOutcome.COMMITTED, 0.1, now=duration * index / (successes + 1)
        )
    for index in range(failures):
        metrics.record_fired()
        metrics.record_outcome(
            TxOutcome.ABORT_MVCC, now=duration * index / (failures + 1)
        )
    metrics.duration = duration
    return ExperimentResult(
        label=label,
        config=FabricConfig(),
        metrics=metrics,
        duration=duration,
        params=dict(params or {}),
    )


def test_mapping_style_access():
    rs = ResultSet([make_result("Fabric", 10), make_result("Fabric++", 20)])
    assert set(rs) == {"Fabric", "Fabric++"}
    assert "Fabric" in rs
    assert rs["Fabric++"].successful_tps > rs["Fabric"].successful_tps
    assert rs[0].label == "Fabric"
    assert rs.get("nope") is None
    with pytest.raises(KeyError):
        rs["nope"]
    assert dict(rs.items())["Fabric"].label == "Fabric"


def test_labels_and_select():
    rs = ResultSet(
        [make_result("Fabric", params={"BS": 16}),
         make_result("Fabric++", params={"BS": 16}),
         make_result("Fabric", params={"BS": 64})]
    )
    assert rs.labels() == ["Fabric", "Fabric++"]
    assert len(rs.select("Fabric")) == 2
    assert all(r.label == "Fabric" for r in rs.select("Fabric").values())


def test_rows_carry_labels_and_params():
    rs = ResultSet([make_result("Fabric", params={"BS": 16})])
    row = rs.rows()[0]
    assert row["label"] == "Fabric"
    assert row["BS"] == 16
    assert "successful_tps" in row


def test_json_round_trip_is_exact():
    rs = ResultSet([make_result("Fabric", 7, 3, params={"s": 0.5}),
                    make_result("Fabric++", 13, 1)])
    clone = ResultSet.from_json(rs.to_json())
    assert clone.rows() == rs.rows()
    assert [r.config for r in clone.values()] == [r.config for r in rs.values()]


def test_from_json_rejects_other_schemas():
    with pytest.raises(ReproError):
        ResultSet.from_json('{"schema_version": 999, "results": []}')
    with pytest.raises(ReproError):
        ResultSet.from_json("not json at all")


def test_improvement_factor():
    rs = ResultSet([make_result("Fabric", 10), make_result("Fabric++", 30)])
    assert rs.improvement_factor() == pytest.approx(3.0)


def test_aggregate_mean_and_stdev():
    rs = ResultSet([make_result("Fabric", 10), make_result("Fabric", 20)])
    stats = rs.aggregate("successful_tps", label="Fabric")
    assert stats["n"] == 2
    assert stats["mean"] == pytest.approx(sum(stats["values"]) / 2)
    assert stats["stdev"] > 0
    assert rs.aggregate(label="missing") == {
        "n": 0, "mean": 0.0, "stdev": 0.0, "values": []
    }


def test_config_round_trip_preserves_nested_dataclasses():
    config = replace(FabricConfig(), seed=42).with_fabric_plus_plus()
    clone = config_from_dict(config_to_dict(config))
    assert clone == config
    assert clone.batch == config.batch
    assert clone.costs == config.costs


def test_result_round_trip_preserves_metrics():
    result = make_result("Fabric++", 5, 4, params={"k": "v"})
    clone = result_from_dict(result_to_dict(result))
    assert clone.row() == result.row()
    assert clone.metrics.commit_latencies == result.metrics.commit_latencies
    assert clone.metrics.outcome_times == result.metrics.outcome_times
