"""Tests for the on-disk result cache and its fingerprint."""

from dataclasses import replace

import pytest

from repro.bench.cache import ResultCache, spec_fingerprint
from repro.bench.harness import run_experiment
from repro.bench.spec import ExperimentSpec
from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.workloads.blank import BlankWorkload
from repro.workloads.registry import WorkloadRef


def small_spec(**overrides):
    base = dict(
        config=replace(
            FabricConfig(),
            clients_per_channel=1,
            client_rate=100.0,
            batch=BatchCutConfig(max_transactions=32),
        ),
        workload=WorkloadRef("blank"),
        duration=1.0,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def test_fingerprint_is_stable_and_label_blind():
    spec = small_spec()
    assert spec_fingerprint(spec) == spec_fingerprint(spec)
    # Labels and report params identify the row, not the simulation.
    relabeled = small_spec(label="other", params={"BS": 32})
    assert spec_fingerprint(relabeled) == spec_fingerprint(spec)


def test_fingerprint_changes_with_every_input():
    base = spec_fingerprint(small_spec())
    changed = [
        small_spec(duration=2.0),
        small_spec(drain=1.0),
        small_spec(seed=5),
        small_spec(config=small_spec().config.with_fabric_plus_plus()),
        small_spec(workload=WorkloadRef("custom", {"num_accounts": 300})),
        small_spec(workload=WorkloadRef("blank", seed=1)),
    ]
    fingerprints = [spec_fingerprint(spec) for spec in changed]
    assert base not in fingerprints
    assert len(set(fingerprints)) == len(fingerprints)


def test_fingerprint_rejects_non_cacheable_specs():
    with pytest.raises(TypeError):
        spec_fingerprint(small_spec(workload=BlankWorkload()))


def test_cache_hit_reproduces_result_exactly(tmp_path):
    cache = ResultCache(tmp_path)
    spec = small_spec(label="Fabric", params={"BS": 32})
    assert cache.get(spec) is None
    result = run_experiment(spec)
    assert cache.put(spec, result)
    assert len(cache) == 1
    hit = cache.get(spec)
    assert hit is not None
    assert hit.row() == result.row()
    assert hit.config == result.config
    assert cache.hits == 1 and cache.misses == 1


def test_cache_misses_on_any_spec_change(tmp_path):
    cache = ResultCache(tmp_path)
    spec = small_spec()
    cache.put(spec, run_experiment(spec))
    assert cache.get(small_spec(duration=2.0)) is None
    assert cache.get(small_spec(seed=3)) is None
    assert (
        cache.get(small_spec(config=spec.config.with_fabric_plus_plus()))
        is None
    )


def test_version_bump_invalidates(tmp_path):
    old = ResultCache(tmp_path, version="1.0")
    spec = small_spec()
    old.put(spec, run_experiment(spec))
    assert old.get(spec) is not None
    new = ResultCache(tmp_path, version="2.0")
    assert new.get(spec) is None


def test_cache_ignores_non_cacheable_specs(tmp_path):
    cache = ResultCache(tmp_path)
    spec = small_spec(workload=BlankWorkload())
    assert cache.key(spec) is None
    assert not cache.put(spec, run_experiment(small_spec()))
    assert cache.get(spec) is None
    assert len(cache) == 0


def test_corrupt_entry_degrades_to_miss(tmp_path):
    cache = ResultCache(tmp_path)
    spec = small_spec()
    cache.put(spec, run_experiment(spec))
    entry = next(tmp_path.glob("*.json"))
    entry.write_text("{not json")
    assert cache.get(spec) is None
    assert not entry.exists()  # the damaged file was removed


def test_clear_removes_everything(tmp_path):
    cache = ResultCache(tmp_path)
    spec = small_spec()
    cache.put(spec, run_experiment(spec))
    assert cache.clear() == 1
    assert len(cache) == 0


def test_cache_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    cache = ResultCache()
    assert cache.root == tmp_path / "elsewhere"
