"""Unit tests for the benchmark harness, caliper report, and text reports."""

from dataclasses import replace

import pytest

from repro.bench.caliper import run_caliper
from repro.bench.harness import (
    ExperimentResult,
    compare_fabric_vs_fabricpp,
    run_experiment,
)
from repro.bench.report import format_series, format_table, improvement_factor
from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.workloads.blank import BlankWorkload
from repro.workloads.custom import CustomWorkload, CustomWorkloadParams


def quick_config():
    return replace(
        FabricConfig(),
        clients_per_channel=2,
        client_rate=100.0,
        client_window=64,
        batch=BatchCutConfig(max_transactions=64),
    )


def quick_workload():
    return CustomWorkload(
        CustomWorkloadParams(num_accounts=500, hot_set_fraction=0.02), seed=0
    )


def test_run_experiment_returns_labelled_result():
    result = run_experiment(
        quick_config(), BlankWorkload(), duration=0.5, params={"bs": 64}
    )
    assert isinstance(result, ExperimentResult)
    assert result.label == "Fabric"
    assert result.successful_tps > 0
    assert result.row()["bs"] == 64
    assert result.row()["label"] == "Fabric"


def test_run_experiment_labels_fabricpp():
    result = run_experiment(
        quick_config().with_fabric_plus_plus(), BlankWorkload(), duration=0.5
    )
    assert result.label == "Fabric++"


def test_compare_runs_both_systems():
    results = compare_fabric_vs_fabricpp(
        quick_config(), quick_workload, duration=1.0
    )
    assert set(results) == {"Fabric", "Fabric++"}
    assert not results["Fabric"].config.is_fabric_plus_plus
    assert results["Fabric++"].config.is_fabric_plus_plus
    assert results["Fabric"].metrics.fired > 0


def test_caliper_report_shape():
    report = run_caliper(
        quick_config(), quick_workload(), duration=2.0, rate_per_client=50
    )
    assert report.label == "Fabric"
    assert report.min_latency <= report.avg_latency <= report.max_latency
    assert report.successful_tps > 0
    rows = report.rows()
    assert rows[0][0] == "Max. Latency [seconds]"
    assert len(rows) == 4


def test_caliper_uses_block_size_512_default():
    # Duration must exceed the 1 s batch delay: throughput only counts
    # outcomes inside the measurement window.
    report = run_caliper(
        quick_config(), BlankWorkload(), duration=3.0, rate_per_client=50
    )
    assert report.successful_tps > 0


# -- report formatting --------------------------------------------------------------


def test_format_table_alignment():
    rows = [
        {"x": 1, "tps": 10.5},
        {"x": 2, "tps": 200.25},
    ]
    text = format_table(rows, title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "x" in lines[1] and "tps" in lines[1]
    assert "10.50" in text
    assert "200.25" in text


def test_format_table_empty():
    assert "(no rows)" in format_table([])


def test_format_series():
    text = format_series(
        "blocksize",
        [16, 32],
        {"Fabric": [100.0, 200.0], "Fabric++": [150.0, 300.0]},
        title="Figure 7",
    )
    assert "Figure 7" in text
    assert "blocksize" in text
    assert "150.0" in text


def test_improvement_factor():
    assert improvement_factor(100, 250) == pytest.approx(2.5)
    assert improvement_factor(0, 10) == float("inf")
    assert improvement_factor(0, 0) == 1.0
