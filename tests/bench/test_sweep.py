"""Tests for the sweep engine: determinism, caching, parallel_map."""

from dataclasses import replace

import pytest

from repro.bench.cache import ResultCache
from repro.bench.spec import ExperimentSpec
from repro.bench.sweep import parallel_map, resolve_jobs, run_sweep
from repro.core.batch_cutter import BatchCutConfig
from repro.errors import ConfigError
from repro.fabric.config import FabricConfig
from repro.workloads.registry import WorkloadRef


def small_grid():
    """A tiny Fabric-vs-Fabric++ grid over two block sizes (4 points)."""
    specs = []
    for block_size in (16, 32):
        config = replace(
            FabricConfig(),
            clients_per_channel=1,
            client_rate=100.0,
            batch=BatchCutConfig(max_transactions=block_size),
        )
        workload = WorkloadRef(
            "custom", {"num_accounts": 300, "hot_set_fraction": 0.05}
        )
        for system in (config.with_vanilla(), config.with_fabric_plus_plus()):
            specs.append(
                ExperimentSpec(
                    config=system,
                    workload=workload,
                    duration=1.0,
                    params={"BS": block_size},
                )
            )
    return specs


def test_parallel_identical_to_serial():
    """The headline guarantee: rows are independent of --jobs."""
    serial = run_sweep(small_grid(), jobs=1, progress=False)
    parallel = run_sweep(small_grid(), jobs=4, progress=False)
    assert parallel.rows() == serial.rows()
    assert parallel.to_json() == serial.to_json()


def test_sweep_preserves_spec_order():
    results = run_sweep(small_grid(), jobs=4, progress=False)
    assert [r.label for r in results.values()] == [
        "Fabric", "Fabric++", "Fabric", "Fabric++"
    ]
    assert [r.params["BS"] for r in results.values()] == [16, 16, 32, 32]


def test_sweep_stats_and_cache_second_run(tmp_path):
    cache = ResultCache(tmp_path)
    first = run_sweep(small_grid(), jobs=2, cache=cache, progress=False)
    assert first.stats.executed == 4
    assert first.stats.cached == 0
    second = run_sweep(small_grid(), jobs=2, cache=cache, progress=False)
    assert second.stats.executed == 0
    assert second.stats.cached == 4
    assert second.rows() == first.rows()
    assert second.to_json() == first.to_json()


def test_sweep_cache_true_uses_cache_dir(tmp_path):
    run_sweep(small_grid()[:1], cache=True, cache_dir=tmp_path, progress=False)
    assert len(list(tmp_path.glob("*.json"))) == 1


def test_sweep_partial_cache_reuses_only_matches(tmp_path):
    cache = ResultCache(tmp_path)
    run_sweep(small_grid()[:2], cache=cache, progress=False)
    results = run_sweep(small_grid(), cache=cache, progress=False)
    assert results.stats.cached == 2
    assert results.stats.executed == 2
    assert len(results) == 4


def test_sweep_without_cache_always_executes():
    results = run_sweep(small_grid()[:1], progress=False)
    assert results.stats.executed == 1
    assert results.stats.cached == 0


def test_resolve_jobs():
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) >= 1
    assert resolve_jobs(None) >= 1
    with pytest.raises(ConfigError):
        resolve_jobs(-1)


def _square(value):  # module-level: must pickle to worker processes
    return value * value


def test_parallel_map_ordered_and_identical():
    items = list(range(12))
    serial = parallel_map(_square, items, jobs=1, progress=False)
    fanned = parallel_map(_square, items, jobs=4, progress=False)
    assert serial == [v * v for v in items]
    assert fanned == serial


def test_progress_lines_report_points(capsys):
    parallel_map(_square, [1, 2], jobs=1, progress=True, label="demo")
    err = capsys.readouterr().err
    assert "[1/2]" in err and "[2/2]" in err and "demo" in err


def test_eta_uses_measured_point_seconds_not_wall_clock(capsys):
    """Regression: the ETA used to divide the sweep's *wall-clock* elapsed
    time (which also covers cache scans and near-instant cache hits) by
    the live-point count, so a sweep resumed from a warm cache predicted
    an ETA of ~0 for the points still to simulate. The estimate must come
    from the measured seconds of uncached points only."""
    from repro.bench.sweep import SweepProgress

    reporter = SweepProgress(total=4, enabled=True, live_total=4, jobs=1)
    # No real time passes in this test; only the reported seconds matter.
    reporter.point_done("p1", 10.0, cached=False)
    err = capsys.readouterr().err
    assert "eta 30s" in err  # 10 s/point * 3 remaining / 1 worker
    reporter.point_done("p2", 20.0, cached=False)
    err = capsys.readouterr().err
    assert "eta 30s" in err  # mean 15 s/point * 2 remaining / 1 worker


def test_eta_divides_by_available_workers(capsys):
    from repro.bench.sweep import SweepProgress

    reporter = SweepProgress(total=5, enabled=True, live_total=5, jobs=2)
    reporter.point_done("p1", 10.0, cached=False)
    err = capsys.readouterr().err
    assert "eta 20s" in err  # 10 s/point * 4 remaining / 2 workers


def test_cache_hits_do_not_skew_eta(capsys):
    """Cache hits are labelled distinctly and contribute nothing to the
    per-point estimate or the remaining-points count."""
    from repro.bench.sweep import SweepProgress

    reporter = SweepProgress(total=3, enabled=True, live_total=1, jobs=1)
    reporter.point_done("warm1", 0.0, cached=True)
    reporter.point_done("warm2", 0.0, cached=True)
    err = capsys.readouterr().err
    assert err.count("cache hit") == 2
    assert "eta" not in err  # nothing measured yet
    reporter.point_done("cold", 8.0, cached=False)
    err = capsys.readouterr().err
    assert "8.00s" in err
    assert "eta" not in err  # last live point: nothing remains


def test_eta_absent_before_first_live_point(capsys):
    from repro.bench.sweep import SweepProgress

    reporter = SweepProgress(total=2, enabled=True, live_total=2, jobs=1)
    assert reporter._eta() is None
