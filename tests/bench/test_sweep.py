"""Tests for the sweep engine: determinism, caching, parallel_map."""

from dataclasses import replace

import pytest

from repro.bench.cache import ResultCache
from repro.bench.spec import ExperimentSpec
from repro.bench.sweep import parallel_map, resolve_jobs, run_sweep
from repro.core.batch_cutter import BatchCutConfig
from repro.errors import ConfigError
from repro.fabric.config import FabricConfig
from repro.workloads.registry import WorkloadRef


def small_grid():
    """A tiny Fabric-vs-Fabric++ grid over two block sizes (4 points)."""
    specs = []
    for block_size in (16, 32):
        config = replace(
            FabricConfig(),
            clients_per_channel=1,
            client_rate=100.0,
            batch=BatchCutConfig(max_transactions=block_size),
        )
        workload = WorkloadRef(
            "custom", {"num_accounts": 300, "hot_set_fraction": 0.05}
        )
        for system in (config.with_vanilla(), config.with_fabric_plus_plus()):
            specs.append(
                ExperimentSpec(
                    config=system,
                    workload=workload,
                    duration=1.0,
                    params={"BS": block_size},
                )
            )
    return specs


def test_parallel_identical_to_serial():
    """The headline guarantee: rows are independent of --jobs."""
    serial = run_sweep(small_grid(), jobs=1, progress=False)
    parallel = run_sweep(small_grid(), jobs=4, progress=False)
    assert parallel.rows() == serial.rows()
    assert parallel.to_json() == serial.to_json()


def test_sweep_preserves_spec_order():
    results = run_sweep(small_grid(), jobs=4, progress=False)
    assert [r.label for r in results.values()] == [
        "Fabric", "Fabric++", "Fabric", "Fabric++"
    ]
    assert [r.params["BS"] for r in results.values()] == [16, 16, 32, 32]


def test_sweep_stats_and_cache_second_run(tmp_path):
    cache = ResultCache(tmp_path)
    first = run_sweep(small_grid(), jobs=2, cache=cache, progress=False)
    assert first.stats.executed == 4
    assert first.stats.cached == 0
    second = run_sweep(small_grid(), jobs=2, cache=cache, progress=False)
    assert second.stats.executed == 0
    assert second.stats.cached == 4
    assert second.rows() == first.rows()
    assert second.to_json() == first.to_json()


def test_sweep_cache_true_uses_cache_dir(tmp_path):
    run_sweep(small_grid()[:1], cache=True, cache_dir=tmp_path, progress=False)
    assert len(list(tmp_path.glob("*.json"))) == 1


def test_sweep_partial_cache_reuses_only_matches(tmp_path):
    cache = ResultCache(tmp_path)
    run_sweep(small_grid()[:2], cache=cache, progress=False)
    results = run_sweep(small_grid(), cache=cache, progress=False)
    assert results.stats.cached == 2
    assert results.stats.executed == 2
    assert len(results) == 4


def test_sweep_without_cache_always_executes():
    results = run_sweep(small_grid()[:1], progress=False)
    assert results.stats.executed == 1
    assert results.stats.cached == 0


def test_resolve_jobs():
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) >= 1
    assert resolve_jobs(None) >= 1
    with pytest.raises(ConfigError):
        resolve_jobs(-1)


def _square(value):  # module-level: must pickle to worker processes
    return value * value


def test_parallel_map_ordered_and_identical():
    items = list(range(12))
    serial = parallel_map(_square, items, jobs=1, progress=False)
    fanned = parallel_map(_square, items, jobs=4, progress=False)
    assert serial == [v * v for v in items]
    assert fanned == serial


def test_progress_lines_report_points(capsys):
    parallel_map(_square, [1, 2], jobs=1, progress=True, label="demo")
    err = capsys.readouterr().err
    assert "[1/2]" in err and "[2/2]" in err and "demo" in err
