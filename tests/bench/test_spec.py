"""Tests for ExperimentSpec and the run_experiment API (new + legacy)."""

import pickle
from dataclasses import replace

import pytest

from repro.bench.harness import run_experiment
from repro.bench.spec import DEFAULT_DRAIN, DEFAULT_DURATION, ExperimentSpec
from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.workloads.blank import BlankWorkload
from repro.workloads.registry import WorkloadRef


def small_config(**overrides):
    base = replace(
        FabricConfig(),
        clients_per_channel=1,
        client_rate=100.0,
        batch=BatchCutConfig(max_transactions=32),
    )
    return replace(base, **overrides) if overrides else base


def small_ref(seed=0):
    return WorkloadRef(
        "custom",
        {"num_accounts": 300, "hot_set_fraction": 0.05},
        seed=seed,
    )


def test_spec_defaults():
    spec = ExperimentSpec(config=small_config(), workload=small_ref())
    assert spec.duration == DEFAULT_DURATION
    assert spec.drain == DEFAULT_DRAIN
    assert spec.seed is None
    assert spec.params == {}


def test_spec_pickles_round_trip():
    spec = ExperimentSpec(
        config=small_config(),
        workload=small_ref(seed=7),
        duration=2.0,
        label="point",
        seed=11,
        drain=1.0,
        params={"BS": 32},
    )
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert clone.workload.seed == 7
    assert clone.params == {"BS": 32}


def test_resolved_config_applies_seed_override():
    spec = ExperimentSpec(config=small_config(), workload=small_ref(), seed=99)
    assert spec.resolved_config().seed == 99
    # Without an override the config passes through untouched.
    plain = ExperimentSpec(config=small_config(), workload=small_ref())
    assert plain.resolved_config() is plain.config


def test_resolved_label_falls_back_to_system_name():
    vanilla = ExperimentSpec(config=small_config().with_vanilla(),
                             workload=small_ref())
    plus = ExperimentSpec(config=small_config().with_fabric_plus_plus(),
                          workload=small_ref())
    assert vanilla.resolved_label() == "Fabric"
    assert plus.resolved_label() == "Fabric++"
    explicit = ExperimentSpec(config=small_config(), workload=small_ref(),
                              label="mine")
    assert explicit.resolved_label() == "mine"


def test_describe_includes_params():
    spec = ExperimentSpec(config=small_config(), workload=small_ref(),
                          label="Fabric", params={"BS": 64})
    assert spec.describe() == "Fabric (BS=64)"


def test_is_cacheable_only_for_workload_refs():
    assert ExperimentSpec(config=small_config(),
                          workload=small_ref()).is_cacheable
    assert not ExperimentSpec(config=small_config(),
                              workload=BlankWorkload()).is_cacheable


def test_run_experiment_spec_and_legacy_agree():
    config = small_config()
    ref = WorkloadRef("blank")
    spec_result = run_experiment(
        ExperimentSpec(config=config, workload=ref, duration=1.0, label="x")
    )
    legacy_result = run_experiment(config, ref, 1.0, label="x")
    assert spec_result.row() == legacy_result.row()


def test_run_experiment_rejects_spec_plus_workload():
    spec = ExperimentSpec(config=small_config(), workload=WorkloadRef("blank"))
    with pytest.raises(TypeError):
        run_experiment(spec, WorkloadRef("blank"))


def test_drain_is_plumbed_through():
    # With no drain window, transactions in flight when the clients stop
    # never resolve; a drain window lets them commit. The counts differ.
    config = small_config()
    ref = WorkloadRef("blank")
    no_drain = run_experiment(
        ExperimentSpec(config=config, workload=ref, duration=1.0, drain=0.0)
    )
    drained = run_experiment(
        ExperimentSpec(config=config, workload=ref, duration=1.0, drain=5.0)
    )
    assert drained.metrics.successful > no_drain.metrics.successful
