"""Tests for ASCII charts, the any_of combinator, and replicated runs."""

from dataclasses import replace

import pytest

from repro.bench.charts import bar_chart, sparkline
from repro.bench.harness import run_replicated
from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.sim.engine import Environment
from repro.errors import SimulationError
from repro.workloads.custom import CustomWorkload, CustomWorkloadParams


# -- bar charts -----------------------------------------------------------------


def test_bar_chart_renders_all_series():
    text = bar_chart(
        "bs", [16, 64],
        {"Fabric": [100.0, 200.0], "Fabric++": [150.0, 300.0]},
        title="demo",
    )
    assert "demo" in text
    assert "bs=16" in text
    assert "Fabric++" in text
    assert "300.0" in text


def test_bar_chart_lengths_proportional():
    text = bar_chart("x", [1], {"a": [10.0], "b": [40.0]}, width=40)
    lines = [line for line in text.splitlines() if "|" in line]
    bars = [line.split("|")[1] for line in lines]
    assert bars[0].count("#") * 4 == bars[1].count("#")
    assert bars[1].count("#") == 40  # peak fills the width


def test_bar_chart_all_zero():
    text = bar_chart("x", [1], {"a": [0.0]})
    assert "0.0" in text
    assert "#" not in text


def test_bar_chart_invalid_width():
    with pytest.raises(ValueError):
        bar_chart("x", [1], {"a": [1.0]}, width=0)


def test_sparkline_trend():
    line = sparkline([0, 1, 2, 3, 4])
    assert len(line) == 5
    assert line[0] == " "
    assert line[-1] == "@"


def test_sparkline_flat_and_empty():
    assert sparkline([]) == ""
    flat = sparkline([5, 5, 5])
    assert len(flat) == 3
    assert len(set(flat)) == 1


# -- any_of ----------------------------------------------------------------------


def test_any_of_fires_with_first():
    env = Environment()
    results = []

    def proc():
        race = env.any_of(
            [env.timeout(5, value="slow"), env.timeout(1, value="fast")]
        )
        value = yield race
        results.append((env.now, race.first_index, value))

    env.process(proc())
    env.run()
    assert results == [(1, 1, "fast")]


def test_any_of_ignores_later_events():
    env = Environment()
    counter = []

    def proc():
        yield env.any_of([env.timeout(1), env.timeout(2)])
        counter.append(env.now)

    env.process(proc())
    env.run()
    assert counter == [1]  # resumed exactly once


def test_any_of_empty_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.any_of([])


# -- replicated runs ----------------------------------------------------------------


def test_run_replicated_aggregates():
    config = replace(
        FabricConfig(),
        clients_per_channel=1,
        client_rate=100.0,
        batch=BatchCutConfig(max_transactions=32),
    )

    def factory(seed):
        return CustomWorkload(
            CustomWorkloadParams(num_accounts=300, hot_set_fraction=0.05),
            seed=seed,
        )

    results = run_replicated(config, factory, seeds=[1, 2, 3], duration=1.5)
    stats = results.aggregate("successful_tps")
    assert stats["n"] == 3
    assert len(stats["values"]) == 3
    assert stats["mean"] > 0
    assert stats["stdev"] >= 0
    assert len(results.rows()) == 3
    assert all(result.label == "Fabric" for result in results.values())
    assert [result.params["seed"] for result in results.values()] == [1, 2, 3]


def test_run_replicated_varies_with_seed():
    config = replace(
        FabricConfig(),
        clients_per_channel=1,
        client_rate=100.0,
        batch=BatchCutConfig(max_transactions=32),
    )

    def factory(seed):
        return CustomWorkload(
            CustomWorkloadParams(num_accounts=300, hot_set_fraction=0.05),
            seed=seed,
        )

    results = run_replicated(config, factory, seeds=[1, 2], duration=1.5)
    assert len(set(results.aggregate("successful_tps")["values"])) > 1


def test_run_replicated_requires_seeds():
    with pytest.raises(ValueError):
        run_replicated(FabricConfig(), lambda seed: None, seeds=[])
