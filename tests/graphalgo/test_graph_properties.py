"""Property-based tests for the graph algorithms (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphalgo import (
    DiGraph,
    condensation,
    is_acyclic,
    simple_cycles,
    strongly_connected_components,
    topological_sort,
)


@st.composite
def random_digraph(draw, max_nodes=12):
    n = draw(st.integers(min_value=0, max_value=max_nodes))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=max(0, n - 1)),
                st.integers(min_value=0, max_value=max(0, n - 1)),
            ),
            max_size=40,
        )
    )
    graph = DiGraph(range(n))
    if n:
        for a, b in edges:
            graph.add_edge(a, b)
    return graph


@given(random_digraph())
def test_sccs_partition_the_nodes(graph):
    components = strongly_connected_components(graph)
    flat = [node for component in components for node in component]
    assert sorted(flat) == sorted(graph.nodes())


@given(random_digraph())
def test_scc_members_mutually_reachable(graph):
    def reachable(start):
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for target in graph.successors(node):
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return seen

    for component in strongly_connected_components(graph):
        for a in component:
            reach = reachable(a)
            assert all(b in reach for b in component)


@given(random_digraph())
def test_condensation_is_acyclic(graph):
    assert is_acyclic(condensation(graph))


@given(random_digraph(max_nodes=8))
@settings(deadline=None)
def test_cycles_are_elementary_and_real(graph):
    for cycle in simple_cycles(graph, max_cycles=500):
        assert len(cycle) == len(set(cycle))
        for i, node in enumerate(cycle):
            assert graph.has_edge(node, cycle[(i + 1) % len(cycle)])


@given(random_digraph(max_nodes=7))
@settings(deadline=None)
def test_cycles_unique(graph):
    def canonical(cycle):
        pivot = cycle.index(min(cycle))
        return tuple(cycle[pivot:] + cycle[:pivot])

    cycles = [canonical(c) for c in simple_cycles(graph, max_cycles=2000)]
    assert len(cycles) == len(set(cycles))


@given(random_digraph(max_nodes=8))
@settings(deadline=None)
def test_no_cycles_iff_acyclic(graph):
    has_cycles = any(True for _ in simple_cycles(graph, max_cycles=1))
    assert has_cycles == (not is_acyclic(graph))


@given(random_digraph())
def test_toposort_respects_edges_when_acyclic(graph):
    if not is_acyclic(graph):
        return
    order = topological_sort(graph)
    position = {node: i for i, node in enumerate(order)}
    for a, b in graph.edges():
        assert position[a] < position[b]


@given(random_digraph(max_nodes=10))
def test_subgraph_edges_subset(graph):
    nodes = graph.nodes()[: len(graph) // 2]
    sub = graph.subgraph(nodes)
    for a, b in sub.edges():
        assert graph.has_edge(a, b)
        assert a in nodes and b in nodes
