"""Unit tests for Johnson's elementary-cycle enumeration."""

from repro.graphalgo import DiGraph, simple_cycles


def cycles_as_sets(graph, **kwargs):
    return {frozenset(c) for c in simple_cycles(graph, **kwargs)}


def canonical(cycle):
    """Rotate a cycle so its smallest element comes first."""
    pivot = cycle.index(min(cycle))
    return tuple(cycle[pivot:] + cycle[:pivot])


def test_empty_graph_has_no_cycles():
    assert list(simple_cycles(DiGraph())) == []


def test_acyclic_graph_has_no_cycles():
    graph = DiGraph()
    graph.add_edge(1, 2)
    graph.add_edge(2, 3)
    graph.add_edge(1, 3)
    assert list(simple_cycles(graph)) == []


def test_self_loop_is_a_cycle():
    graph = DiGraph()
    graph.add_edge("a", "a")
    assert list(simple_cycles(graph)) == [["a"]]


def test_two_cycle():
    graph = DiGraph()
    graph.add_edge(1, 2)
    graph.add_edge(2, 1)
    assert cycles_as_sets(graph) == {frozenset([1, 2])}


def test_triangle():
    graph = DiGraph()
    graph.add_edge(1, 2)
    graph.add_edge(2, 3)
    graph.add_edge(3, 1)
    cycles = list(simple_cycles(graph))
    assert len(cycles) == 1
    assert canonical(cycles[0]) == (1, 2, 3)


def test_two_triangles_sharing_a_node():
    graph = DiGraph()
    for a, b in [(1, 2), (2, 3), (3, 1), (1, 4), (4, 5), (5, 1)]:
        graph.add_edge(a, b)
    assert cycles_as_sets(graph) == {frozenset([1, 2, 3]), frozenset([1, 4, 5])}


def test_complete_graph_k3_has_five_cycles():
    """K3 with all 6 directed edges: three 2-cycles and two 3-cycles."""
    graph = DiGraph()
    for a in range(3):
        for b in range(3):
            if a != b:
                graph.add_edge(a, b)
    cycles = [canonical(c) for c in simple_cycles(graph)]
    assert len(cycles) == 5
    assert len(set(cycles)) == 5
    lengths = sorted(len(c) for c in cycles)
    assert lengths == [2, 2, 2, 3, 3]


def test_complete_graph_k4_cycle_count():
    """K4 has 6 two-cycles + 8 three-cycles + 6 four-cycles = 20."""
    graph = DiGraph()
    for a in range(4):
        for b in range(4):
            if a != b:
                graph.add_edge(a, b)
    cycles = [canonical(c) for c in simple_cycles(graph)]
    assert len(cycles) == 20
    assert len(set(cycles)) == 20


def test_paper_table3_cycles(table3):
    """The conflict graph of Table 3 contains exactly c1, c2, c3."""
    from repro.core.conflict_graph import build_conflict_graph

    cycles = cycles_as_sets(build_conflict_graph(table3))
    assert cycles == {
        frozenset([0, 3]),        # c1 = T0 -> T3 -> T0
        frozenset([0, 3, 1]),     # c2 = T0 -> T3 -> T1 -> T0
        frozenset([2, 4]),        # c3 = T2 -> T4 -> T2
    }


def test_max_cycles_caps_enumeration():
    graph = DiGraph()
    for a in range(5):
        for b in range(5):
            if a != b:
                graph.add_edge(a, b)
    capped = list(simple_cycles(graph, max_cycles=7))
    assert len(capped) == 7


def test_cycles_are_elementary():
    """No node may repeat within one reported cycle."""
    graph = DiGraph()
    edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 0), (1, 3)]
    for a, b in edges:
        graph.add_edge(a, b)
    for cycle in simple_cycles(graph):
        assert len(cycle) == len(set(cycle))


def test_cycle_edges_exist():
    graph = DiGraph()
    edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 1)]
    for a, b in edges:
        graph.add_edge(a, b)
    for cycle in simple_cycles(graph):
        for i, node in enumerate(cycle):
            successor = cycle[(i + 1) % len(cycle)]
            assert graph.has_edge(node, successor)


def test_long_single_cycle():
    n = 500
    graph = DiGraph()
    for i in range(n):
        graph.add_edge(i, (i + 1) % n)
    cycles = list(simple_cycles(graph))
    assert len(cycles) == 1
    assert len(cycles[0]) == n


def test_figure_eight():
    """Two cycles sharing one node, plus the figure-eight is NOT elementary."""
    graph = DiGraph()
    for a, b in [("a", "b"), ("b", "a"), ("a", "c"), ("c", "a")]:
        graph.add_edge(a, b)
    assert cycles_as_sets(graph) == {frozenset(["a", "b"]), frozenset(["a", "c"])}
