"""Unit tests for topological sorting helpers."""

import pytest

from repro.graphalgo import DiGraph, is_acyclic, topological_sort


def test_empty_graph():
    assert topological_sort(DiGraph()) == []


def test_single_node():
    assert topological_sort(DiGraph(["a"])) == ["a"]


def test_chain_order():
    graph = DiGraph()
    graph.add_edge(1, 2)
    graph.add_edge(2, 3)
    assert topological_sort(graph) == [1, 2, 3]


def test_diamond_respects_edges():
    graph = DiGraph()
    for a, b in [(1, 2), (1, 3), (2, 4), (3, 4)]:
        graph.add_edge(a, b)
    order = topological_sort(graph)
    position = {node: i for i, node in enumerate(order)}
    for a, b in graph.edges():
        assert position[a] < position[b]


def test_cycle_raises():
    graph = DiGraph()
    graph.add_edge(1, 2)
    graph.add_edge(2, 1)
    with pytest.raises(ValueError):
        topological_sort(graph)


def test_self_loop_raises():
    graph = DiGraph()
    graph.add_edge("x", "x")
    with pytest.raises(ValueError):
        topological_sort(graph)


def test_is_acyclic_true():
    graph = DiGraph()
    graph.add_edge(1, 2)
    assert is_acyclic(graph)


def test_is_acyclic_false():
    graph = DiGraph()
    graph.add_edge(1, 2)
    graph.add_edge(2, 3)
    graph.add_edge(3, 1)
    assert not is_acyclic(graph)


def test_disconnected_components_all_sorted():
    graph = DiGraph()
    graph.add_edge("a", "b")
    graph.add_edge("x", "y")
    order = topological_sort(graph)
    assert set(order) == {"a", "b", "x", "y"}
    assert order.index("a") < order.index("b")
    assert order.index("x") < order.index("y")
