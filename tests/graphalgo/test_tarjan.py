"""Unit tests for Tarjan's strongly-connected-components algorithm."""

from repro.graphalgo import DiGraph, condensation, strongly_connected_components


def components_as_sets(graph):
    return {frozenset(c) for c in strongly_connected_components(graph)}


def test_empty_graph_has_no_components():
    assert strongly_connected_components(DiGraph()) == []


def test_single_node():
    graph = DiGraph(["a"])
    assert components_as_sets(graph) == {frozenset(["a"])}


def test_isolated_nodes_are_singletons():
    graph = DiGraph(range(4))
    assert components_as_sets(graph) == {frozenset([i]) for i in range(4)}


def test_two_cycle():
    graph = DiGraph()
    graph.add_edge(1, 2)
    graph.add_edge(2, 1)
    assert components_as_sets(graph) == {frozenset([1, 2])}


def test_chain_is_all_singletons():
    graph = DiGraph()
    for i in range(5):
        graph.add_edge(i, i + 1)
    assert all(len(c) == 1 for c in strongly_connected_components(graph))


def test_cycle_of_length_n():
    n = 50
    graph = DiGraph()
    for i in range(n):
        graph.add_edge(i, (i + 1) % n)
    components = strongly_connected_components(graph)
    assert len(components) == 1
    assert set(components[0]) == set(range(n))


def test_two_separate_cycles():
    graph = DiGraph()
    graph.add_edge("a", "b")
    graph.add_edge("b", "a")
    graph.add_edge("x", "y")
    graph.add_edge("y", "x")
    graph.add_edge("a", "x")  # bridge, one direction only
    assert components_as_sets(graph) == {
        frozenset(["a", "b"]),
        frozenset(["x", "y"]),
    }


def test_paper_figure4_decomposition(table3):
    """The conflict graph of Table 3 splits into {T0,T1,T3}, {T2,T4}, {T5}."""
    from repro.core.conflict_graph import build_conflict_graph

    graph = build_conflict_graph(table3)
    assert components_as_sets(graph) == {
        frozenset([0, 1, 3]),
        frozenset([2, 4]),
        frozenset([5]),
    }


def test_nested_scc_structure():
    # Two SCCs connected by a one-way edge: {0,1,2} -> {3,4}
    graph = DiGraph()
    graph.add_edge(0, 1)
    graph.add_edge(1, 2)
    graph.add_edge(2, 0)
    graph.add_edge(2, 3)
    graph.add_edge(3, 4)
    graph.add_edge(4, 3)
    assert components_as_sets(graph) == {frozenset([0, 1, 2]), frozenset([3, 4])}


def test_components_partition_nodes():
    graph = DiGraph()
    for i in range(20):
        graph.add_edge(i, (i * 7 + 3) % 20)
    components = strongly_connected_components(graph)
    seen = [node for component in components for node in component]
    assert sorted(seen) == sorted(graph.nodes())
    assert len(seen) == len(set(seen))


def test_deep_chain_no_recursion_error():
    """The iterative implementation must survive very deep graphs."""
    graph = DiGraph()
    n = 50_000
    for i in range(n):
        graph.add_edge(i, i + 1)
    components = strongly_connected_components(graph)
    assert len(components) == n + 1


def test_condensation_is_acyclic():
    from repro.graphalgo import is_acyclic

    graph = DiGraph()
    graph.add_edge(1, 2)
    graph.add_edge(2, 1)
    graph.add_edge(2, 3)
    graph.add_edge(3, 4)
    graph.add_edge(4, 3)
    cond = condensation(graph)
    assert len(cond) == 2
    assert is_acyclic(cond)
    assert cond.has_edge(frozenset([1, 2]), frozenset([3, 4]))


def test_condensation_no_self_edges():
    graph = DiGraph()
    graph.add_edge(1, 2)
    graph.add_edge(2, 1)
    cond = condensation(graph)
    node = frozenset([1, 2])
    assert not cond.has_edge(node, node)
