"""Unit tests for the directed-graph container."""

import pytest

from repro.graphalgo import DiGraph


def test_empty_graph():
    graph = DiGraph()
    assert len(graph) == 0
    assert graph.nodes() == []
    assert graph.edges() == []
    assert graph.num_edges() == 0


def test_add_node_idempotent():
    graph = DiGraph()
    graph.add_node("a")
    graph.add_node("a")
    assert len(graph) == 1


def test_add_edge_creates_nodes():
    graph = DiGraph()
    graph.add_edge(1, 2)
    assert 1 in graph
    assert 2 in graph
    assert graph.has_edge(1, 2)
    assert not graph.has_edge(2, 1)


def test_duplicate_edge_counted_once():
    graph = DiGraph()
    graph.add_edge(1, 2)
    graph.add_edge(1, 2)
    assert graph.num_edges() == 1


def test_successors_and_predecessors():
    graph = DiGraph()
    graph.add_edge("a", "b")
    graph.add_edge("a", "c")
    graph.add_edge("d", "b")
    assert graph.successors("a") == {"b", "c"}
    assert graph.predecessors("b") == {"a", "d"}
    assert graph.successors("b") == set()


def test_degrees():
    graph = DiGraph()
    graph.add_edge(1, 2)
    graph.add_edge(3, 2)
    graph.add_edge(2, 4)
    assert graph.in_degree(2) == 2
    assert graph.out_degree(2) == 1
    assert graph.in_degree(1) == 0


def test_self_loop():
    graph = DiGraph()
    graph.add_edge("x", "x")
    assert graph.has_edge("x", "x")
    assert graph.in_degree("x") == 1
    assert graph.out_degree("x") == 1


def test_remove_node_cleans_edges():
    graph = DiGraph()
    graph.add_edge(1, 2)
    graph.add_edge(2, 3)
    graph.add_edge(3, 1)
    graph.remove_node(2)
    assert 2 not in graph
    assert not graph.has_edge(1, 2)
    assert graph.has_edge(3, 1)
    assert graph.successors(1) == set()
    assert graph.predecessors(1) == {3}


def test_remove_node_with_self_loop():
    graph = DiGraph()
    graph.add_edge(1, 1)
    graph.add_edge(1, 2)
    graph.remove_node(1)
    assert 1 not in graph
    assert graph.predecessors(2) == set()


def test_subgraph_induces_edges():
    graph = DiGraph()
    graph.add_edge(1, 2)
    graph.add_edge(2, 3)
    graph.add_edge(3, 1)
    sub = graph.subgraph([1, 2])
    assert sorted(sub.nodes()) == [1, 2]
    assert sub.has_edge(1, 2)
    assert not sub.has_edge(2, 3)
    assert sub.num_edges() == 1


def test_subgraph_is_independent_copy():
    graph = DiGraph()
    graph.add_edge(1, 2)
    sub = graph.subgraph([1, 2])
    sub.add_edge(2, 1)
    assert not graph.has_edge(2, 1)


def test_copy_is_deep_for_structure():
    graph = DiGraph()
    graph.add_edge("a", "b")
    clone = graph.copy()
    clone.add_edge("b", "a")
    assert not graph.has_edge("b", "a")
    assert clone.has_edge("a", "b")


def test_nodes_keep_insertion_order():
    graph = DiGraph()
    for node in ["z", "m", "a"]:
        graph.add_node(node)
    assert graph.nodes() == ["z", "m", "a"]


def test_iteration_matches_nodes():
    graph = DiGraph([3, 1, 2])
    assert list(graph) == [3, 1, 2]


def test_constructor_with_nodes():
    graph = DiGraph(range(5))
    assert len(graph) == 5
    assert graph.num_edges() == 0


def test_successors_of_unknown_node_raises():
    graph = DiGraph()
    with pytest.raises(KeyError):
        graph.successors("missing")
