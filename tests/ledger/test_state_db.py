"""Unit tests for the versioned state database."""

import pytest

from repro.errors import StateError
from repro.ledger.state_db import GENESIS_VERSION, StateDatabase, Version


def test_empty_db():
    db = StateDatabase()
    assert len(db) == 0
    assert db.get("missing") is None
    assert db.get_value("missing") is None
    assert db.get_value("missing", default=7) == 7
    assert db.get_version("missing") is None
    assert db.last_block_id == 0


def test_populate_sets_genesis_version():
    db = StateDatabase()
    db.populate({"a": 1, "b": 2})
    assert db.get_value("a") == 1
    assert db.get_version("a") == GENESIS_VERSION
    assert "b" in db
    assert len(db) == 2


def test_populate_after_block_rejected():
    db = StateDatabase()
    db.apply_block_writes(1, [(0, {"x": 1})])
    with pytest.raises(StateError):
        db.populate({"a": 1})


def test_apply_block_writes_stamps_versions():
    db = StateDatabase()
    db.apply_block_writes(1, [(0, {"a": 10}), (3, {"b": 20})])
    assert db.get("a").value == 10
    assert db.get("a").version == Version(1, 0)
    assert db.get("b").version == Version(1, 3)
    assert db.last_block_id == 1


def test_apply_blocks_must_be_in_order():
    db = StateDatabase()
    db.apply_block_writes(1, [])
    with pytest.raises(StateError):
        db.apply_block_writes(1, [])
    with pytest.raises(StateError):
        db.apply_block_writes(0, [])
    db.apply_block_writes(2, [])
    assert db.last_block_id == 2


def test_later_tx_in_block_overwrites_earlier():
    db = StateDatabase()
    db.apply_block_writes(1, [(0, {"k": "first"}), (1, {"k": "second"})])
    assert db.get_value("k") == "second"
    assert db.get_version("k") == Version(1, 1)


def test_read_is_current_matches_version():
    db = StateDatabase()
    db.populate({"a": 1})
    assert db.read_is_current("a", GENESIS_VERSION)
    db.apply_block_writes(1, [(0, {"a": 2})])
    assert not db.read_is_current("a", GENESIS_VERSION)
    assert db.read_is_current("a", Version(1, 0))


def test_read_is_current_for_absent_key():
    db = StateDatabase()
    assert db.read_is_current("ghost", None)
    db.apply_block_writes(1, [(0, {"ghost": 1})])
    assert not db.read_is_current("ghost", None)


def test_snapshot_is_frozen():
    db = StateDatabase()
    db.populate({"a": 1})
    snap = db.snapshot()
    db.apply_block_writes(1, [(0, {"a": 2, "b": 3})])
    assert snap.get("a").value == 1
    assert "b" not in snap
    assert snap.last_block_id == 0
    assert db.get_value("a") == 2


def test_snapshot_length():
    db = StateDatabase()
    db.populate({"a": 1, "b": 2})
    assert len(db.snapshot()) == 2


def test_apply_write_single():
    db = StateDatabase()
    db.apply_write("k", 5, Version(2, 7))
    assert db.get_version("k") == Version(2, 7)


def test_version_ordering_matches_commit_order():
    assert Version(1, 5) < Version(2, 0)
    assert Version(2, 1) < Version(2, 2)
    assert Version(3, 0) > Version(2, 999)
    assert Version(1, 1) == Version(1, 1)


def test_keys_and_items_iteration():
    db = StateDatabase()
    db.populate({"a": 1, "b": 2})
    assert sorted(db.keys()) == ["a", "b"]
    items = dict(db.items())
    assert items["a"].value == 1
