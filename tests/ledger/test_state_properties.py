"""Property-based tests: StateDatabase against a model dictionary."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, rule

from repro.ledger.state_db import StateDatabase, Version

keys = st.sampled_from(["a", "b", "c", "d", "e"])
values = st.integers(min_value=-1000, max_value=1000)


@given(st.dictionaries(keys, values))
def test_populate_round_trips(initial):
    db = StateDatabase()
    db.populate(initial)
    for key, value in initial.items():
        assert db.get_value(key) == value


@given(
    st.lists(
        st.dictionaries(keys, values, min_size=1),
        min_size=1,
        max_size=10,
    )
)
def test_blocks_apply_like_dict_updates(blocks):
    db = StateDatabase()
    model = {}
    for block_id, writes in enumerate(blocks, start=1):
        db.apply_block_writes(block_id, [(0, writes)])
        model.update(writes)
    for key, value in model.items():
        assert db.get_value(key) == value
    assert len(db) == len(model)
    assert db.last_block_id == len(blocks)


@given(
    st.lists(
        st.dictionaries(keys, values, min_size=1),
        min_size=1,
        max_size=8,
    )
)
def test_versions_track_last_writer(blocks):
    db = StateDatabase()
    last_writer = {}
    for block_id, writes in enumerate(blocks, start=1):
        db.apply_block_writes(block_id, [(0, writes)])
        for key in writes:
            last_writer[key] = Version(block_id, 0)
    for key, version in last_writer.items():
        assert db.get_version(key) == version
        assert db.read_is_current(key, version)


class StateMachine(RuleBasedStateMachine):
    """Stateful comparison of StateDatabase against a dict model."""

    def __init__(self):
        super().__init__()
        self.db = StateDatabase()
        self.model = {}
        self.block_id = 0
        self.snapshots = []

    @rule(writes=st.dictionaries(keys, values, min_size=1, max_size=3))
    def apply_block(self, writes):
        self.block_id += 1
        self.db.apply_block_writes(self.block_id, [(0, writes)])
        self.model.update(writes)

    @rule()
    def take_snapshot(self):
        self.snapshots.append((self.db.snapshot(), dict(self.model)))

    @invariant()
    def db_matches_model(self):
        assert len(self.db) == len(self.model)
        for key, value in self.model.items():
            assert self.db.get_value(key) == value

    @invariant()
    def snapshots_stay_frozen(self):
        for snapshot, frozen_model in self.snapshots:
            assert len(snapshot) == len(frozen_model)
            for key, value in frozen_model.items():
                assert snapshot.get(key).value == value


TestStateMachine = StateMachine.TestCase
TestStateMachine.settings = settings(max_examples=30, stateful_step_count=20)
