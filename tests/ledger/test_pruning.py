"""Pruning with verifiable continuity: compaction, export, catch-up.

Covers the ledger-side half of the long-horizon durability work: blocks
below a checkpointed height fold into a :class:`ContinuityRecord` whose
rolling hash anchors the remaining chain, the export/import round trip
preserves it, a pruned block request fails loudly naming the missing
height, and crash-recovery catch-up still works against a pruned source
— for vanilla Fabric and Fabric++ alike.
"""

from dataclasses import replace

import pytest

from repro.core.batch_cutter import BatchCutConfig
from repro.errors import LedgerError, LedgerVerificationError
from repro.fabric.config import FabricConfig
from repro.fabric.network import FabricNetwork
from repro.ledger.export import (
    catch_up_from,
    export_ledger,
    import_ledger,
    replay_state,
)
from repro.ledger.ledger import Ledger
from repro.ledger.state_db import StateDatabase
from repro.workloads.custom import CustomWorkload, CustomWorkloadParams


def _finished_network(fabric_plus_plus: bool) -> FabricNetwork:
    config = replace(
        FabricConfig(),
        clients_per_channel=2,
        client_rate=100.0,
        batch=BatchCutConfig(max_transactions=16),
        seed=5,
    )
    if fabric_plus_plus:
        config = config.with_fabric_plus_plus()
    workload = CustomWorkload(
        CustomWorkloadParams(num_accounts=300, hot_set_fraction=0.05), seed=4
    )
    network = FabricNetwork(config, workload)
    network.run(duration=1.5, drain=5.0)
    return network


@pytest.fixture(scope="module", params=["fabric", "fabric++"])
def pruned_ledger(request):
    """A pruned reference ledger, its unpruned twin, and expected counts."""
    network = _finished_network(request.param == "fabric++")
    ledger = network.reference_peer.channels["ch0"].ledger
    assert ledger.height >= 4, "run too short to exercise pruning"
    full = import_ledger(export_ledger(ledger))  # unpruned copy
    prune_to = ledger.height // 2
    # Expected continuity counts, taken from the live blocks before the
    # prune folds them away (exports do not carry early-aborted lists).
    prefix = [ledger.block(i) for i in range(1, prune_to)]
    expected_counts = {
        "txs": sum(
            len(b.transactions) + len(b.early_aborted) for b in prefix
        ),
        "valid_txs": sum(
            1 for b in prefix for ok in b.validity.values() if ok
        ),
    }
    pruned_count = ledger.prune_below(prune_to)
    assert pruned_count == prune_to - 1
    return ledger, full, prune_to, expected_counts


def test_prune_folds_blocks_into_continuity(pruned_ledger):
    ledger, full, prune_to, _counts = pruned_ledger
    record = ledger.continuity
    assert record is not None
    assert record.height == prune_to - 1
    assert record.blocks == prune_to - 1
    assert ledger.first_block_id == prune_to
    assert ledger.height == full.height
    assert ledger.tip_hash == full.tip_hash
    # The rolling hash anchors the retained chain to the pruned prefix.
    assert record.tip_hash == full.block(prune_to - 1).header.data_hash
    assert ledger.verify_chain()


def test_continuity_counts_match_pruned_prefix(pruned_ledger):
    ledger, _full, _prune_to, counts = pruned_ledger
    record = ledger.continuity
    assert record.txs == counts["txs"]
    assert record.valid_txs == counts["valid_txs"]


def test_pruned_block_request_names_missing_height(pruned_ledger):
    ledger, _full, prune_to, _counts = pruned_ledger
    with pytest.raises(LedgerVerificationError) as excinfo:
        ledger.block(prune_to - 1)
    assert excinfo.value.block_index == prune_to - 1
    assert str(prune_to - 1) in str(excinfo.value)
    assert str(ledger.first_block_id) in str(excinfo.value)
    # Retained heights still resolve, out-of-range ids still LedgerError.
    assert ledger.block(prune_to).block_id == prune_to
    with pytest.raises(LedgerError):
        ledger.block(ledger.height + 1)


def test_export_verify_succeeds_from_continuity_record(pruned_ledger):
    ledger, _full, prune_to, _counts = pruned_ledger
    payload = export_ledger(ledger)
    assert payload["continuity"]["height"] == prune_to - 1
    rebuilt = import_ledger(payload)
    assert rebuilt.verify_chain()
    assert rebuilt.height == ledger.height
    assert rebuilt.tip_hash == ledger.tip_hash
    assert rebuilt.first_block_id == ledger.first_block_id
    assert rebuilt.continuity == ledger.continuity


def test_unpruned_export_has_no_continuity_key(pruned_ledger):
    _ledger, full, _prune_to, _counts = pruned_ledger
    assert "continuity" not in export_ledger(full)


def test_import_rejects_tampered_continuity_anchor(pruned_ledger):
    ledger, _full, _prune_to, _counts = pruned_ledger
    payload = export_ledger(ledger)
    payload["continuity"]["tip_hash"] = "00" * 32
    with pytest.raises(LedgerVerificationError):
        import_ledger(payload)


def test_import_rejects_corrupt_continuity_record(pruned_ledger):
    ledger, _full, _prune_to, _counts = pruned_ledger
    payload = export_ledger(ledger)
    del payload["continuity"]["tip_hash"]
    with pytest.raises(LedgerVerificationError) as excinfo:
        import_ledger(payload)
    assert "continuity" in str(excinfo.value)


def test_catch_up_from_pruned_source(pruned_ledger):
    """A follower whose tip is at/above the prune point catches up fine."""
    ledger, full, prune_to, _counts = pruned_ledger
    follower = Ledger()
    state = StateDatabase()
    for block_id in range(1, prune_to + 2):
        follower.append(full.block(block_id))
    replayed = catch_up_from(ledger, follower, state)
    assert replayed == full.height - (prune_to + 1)
    assert follower.tip_hash == ledger.tip_hash
    assert follower.verify_chain()


def test_catch_up_gap_below_prune_point_fails_loudly(pruned_ledger):
    """A follower needing a pruned block gets a clear error, not silence."""
    ledger, full, prune_to, _counts = pruned_ledger
    follower = Ledger()
    follower.append(full.block(1))  # tip 1, needs block 2 — pruned
    state = StateDatabase()
    with pytest.raises(LedgerVerificationError) as excinfo:
        catch_up_from(ledger, follower, state)
    assert excinfo.value.block_index == 2
    assert "pruned" in str(excinfo.value)


def test_replay_state_over_retained_blocks(pruned_ledger):
    """Prefix state + retained-suffix replay equals full-chain replay."""
    ledger, full, prune_to, _counts = pruned_ledger
    pruned_twin = import_ledger(export_ledger(ledger))
    base = StateDatabase()
    for block in full:
        if block.block_id < prune_to:
            base.apply_block_writes(
                block.block_id,
                [
                    (index, tx.writes)
                    for index, tx in enumerate(block.transactions)
                    if block.is_valid(tx.tx_id)
                ],
            )
    for block in pruned_twin:
        base.apply_block_writes(
            block.block_id,
            [
                (index, tx.writes)
                for index, tx in enumerate(block.transactions)
                if block.is_valid(tx.tx_id)
            ],
        )
    expected = replay_state(full, {})
    assert base.last_block_id == expected.last_block_id
    assert {k: base.get(k) for k in base.keys()} == {
        k: expected.get(k) for k in expected.keys()
    }


def test_prune_is_idempotent_and_clamped(pruned_ledger):
    ledger, _full, prune_to, _counts = pruned_ledger
    before = ledger.continuity
    assert ledger.prune_below(prune_to) == 0
    assert ledger.prune_below(prune_to - 3) == 0
    assert ledger.continuity == before
    # Pruning past the tip clamps to the tip (tip is never removed).
    extra = ledger.prune_below(ledger.height + 50)
    assert ledger.first_block_id == ledger.height
    assert len(ledger) == 1
    assert extra == ledger.height - prune_to
    assert ledger.verify_chain()
