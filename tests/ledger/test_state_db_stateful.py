"""Hypothesis stateful test: StateDatabase vs a versioned model dict.

Extends the basic machine in ``test_state_properties.py`` with what the
fault-injection layer leans on:

- the *version* bookkeeping (``Version(block_id, tx_index)``) is part of
  the model, not just the values — crash recovery replays writes and
  must reproduce versions exactly;
- both write paths are exercised and must agree: vanilla's atomic
  ``apply_block_writes`` and Fabric++'s inline ``apply_write`` +
  ``advance_block`` (paper Section 5.2.1);
- a lagging replica database catches up by replaying the retained block
  log — the in-memory analogue of a recovered peer — and must match the
  live database byte for byte after every catch-up;
- out-of-order block application is always rejected.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.errors import StateError
from repro.ledger.state_db import StateDatabase, Version

keys = st.sampled_from(["a", "b", "c", "d", "e", "f"])
values = st.integers(min_value=-1000, max_value=1000)
#: A block: per-transaction write sets, applied in tx order.
tx_writes = st.lists(
    st.dictionaries(keys, values, min_size=1, max_size=3),
    min_size=1,
    max_size=4,
)


class VersionedStateMachine(RuleBasedStateMachine):
    """Live database, versioned model, and a catch-up replica."""

    def __init__(self):
        super().__init__()
        self.db = StateDatabase()
        self.replica = StateDatabase()
        #: key -> (value, Version) — the oracle.
        self.model = {}
        self.block_id = 0
        #: Retained block log: (block_id, [(tx_index, writes), ...]).
        self.block_log = []

    def _record(self, block_id, indexed_writes):
        self.block_log.append((block_id, indexed_writes))
        for tx_index, writes in indexed_writes:
            for key, value in writes.items():
                self.model[key] = (value, Version(block_id, tx_index))

    @rule(block=tx_writes)
    def apply_block_atomically(self, block):
        """Vanilla commit: the whole block in one atomic application."""
        self.block_id += 1
        indexed = list(enumerate(block))
        self.db.apply_block_writes(self.block_id, indexed)
        self._record(self.block_id, indexed)

    @rule(block=tx_writes)
    def apply_block_inline(self, block):
        """Fabric++ commit: per-transaction inline writes, then advance."""
        self.block_id += 1
        indexed = list(enumerate(block))
        for tx_index, writes in indexed:
            for key, value in writes.items():
                self.db.apply_write(key, value, Version(self.block_id, tx_index))
        self.db.advance_block(self.block_id)
        self._record(self.block_id, indexed)

    @rule()
    def replica_catches_up(self):
        """Replay every block the replica missed (the recovery path)."""
        for block_id, indexed_writes in self.block_log:
            if block_id <= self.replica.last_block_id:
                continue
            self.replica.apply_block_writes(block_id, indexed_writes)
        assert self.replica.last_block_id == self.db.last_block_id
        assert dict(self.replica.items()) == dict(self.db.items())

    @precondition(lambda self: self.block_id > 0)
    @rule(block=tx_writes)
    def stale_block_is_rejected(self, block):
        """Re-applying the current (or any older) block must fail."""
        with pytest.raises(StateError):
            self.db.apply_block_writes(self.block_id, list(enumerate(block)))

    @invariant()
    def values_and_versions_match_model(self):
        assert len(self.db) == len(self.model)
        for key, (value, version) in self.model.items():
            entry = self.db.get(key)
            assert entry.value == value
            assert entry.version == version
            assert self.db.read_is_current(key, version)

    @invariant()
    def absent_keys_read_as_current_none(self):
        for key in ("zz", "yy"):
            assert key not in self.db
            assert self.db.read_is_current(key, None)

    @invariant()
    def range_scan_is_sorted_and_complete(self):
        scanned = list(self.db.range_scan("a"))
        assert [key for key, _entry in scanned] == sorted(self.model)

    @invariant()
    def height_tracks_blocks(self):
        assert self.db.last_block_id == self.block_id


TestVersionedStateMachine = VersionedStateMachine.TestCase
TestVersionedStateMachine.settings = settings(
    max_examples=25, stateful_step_count=25, deadline=None
)
