"""Unit tests for blocks and the hash-chained ledger."""

import pytest

from repro.errors import LedgerError
from repro.ledger.block import Block, compute_block_hash
from repro.ledger.ledger import GENESIS_HASH, Ledger


class FakeTx:
    """Minimal transaction stand-in with a digest."""

    def __init__(self, tx_id):
        self.tx_id = tx_id

    def digest(self):
        return self.tx_id.encode()


def make_block(block_id, previous_hash, tx_ids):
    return Block.create(block_id, previous_hash, [FakeTx(t) for t in tx_ids])


def test_block_create_hashes_content():
    block = make_block(1, GENESIS_HASH, ["t1", "t2"])
    assert block.block_id == 1
    assert block.header.previous_hash == GENESIS_HASH
    expected = compute_block_hash(1, GENESIS_HASH, block.transactions)
    assert block.header.data_hash == expected
    assert len(block) == 2


def test_block_hash_depends_on_transactions():
    a = make_block(1, GENESIS_HASH, ["t1"])
    b = make_block(1, GENESIS_HASH, ["t2"])
    assert a.header.data_hash != b.header.data_hash


def test_block_hash_depends_on_previous():
    a = make_block(2, b"\x01" * 32, ["t1"])
    b = make_block(2, b"\x02" * 32, ["t1"])
    assert a.header.data_hash != b.header.data_hash


def test_block_validity_marking():
    block = make_block(1, GENESIS_HASH, ["t1", "t2"])
    assert block.is_valid("t1") is None
    block.mark("t1", True)
    block.mark("t2", False)
    assert block.is_valid("t1") is True
    assert block.is_valid("t2") is False


def test_ledger_append_and_height():
    ledger = Ledger()
    assert ledger.height == 0
    assert ledger.tip_hash == GENESIS_HASH
    block1 = make_block(1, ledger.tip_hash, ["a"])
    ledger.append(block1)
    block2 = make_block(2, ledger.tip_hash, ["b"])
    ledger.append(block2)
    assert ledger.height == 2
    assert ledger.tip_block_id == 2
    assert list(ledger) == [block1, block2]


def test_ledger_rejects_wrong_id():
    ledger = Ledger()
    with pytest.raises(LedgerError):
        ledger.append(make_block(2, GENESIS_HASH, ["a"]))


def test_ledger_rejects_broken_chain():
    ledger = Ledger()
    ledger.append(make_block(1, GENESIS_HASH, ["a"]))
    with pytest.raises(LedgerError):
        ledger.append(make_block(2, b"\x00" * 32, ["b"]))


def test_ledger_rejects_tampered_content():
    ledger = Ledger()
    block = make_block(1, GENESIS_HASH, ["a"])
    block.transactions.append(FakeTx("sneaky"))  # content no longer matches hash
    with pytest.raises(LedgerError):
        ledger.append(block)


def test_ledger_block_lookup():
    ledger = Ledger()
    block = make_block(1, GENESIS_HASH, ["a"])
    ledger.append(block)
    assert ledger.block(1) is block
    with pytest.raises(LedgerError):
        ledger.block(2)
    with pytest.raises(LedgerError):
        ledger.block(0)


def test_find_transaction():
    ledger = Ledger()
    ledger.append(make_block(1, ledger.tip_hash, ["a", "b"]))
    ledger.append(make_block(2, ledger.tip_hash, ["c"]))
    found = ledger.find_transaction("c")
    assert found is not None
    block, transaction = found
    assert block.block_id == 2
    assert transaction.tx_id == "c"
    assert ledger.find_transaction("zzz") is None


def test_verify_chain_detects_mutation():
    ledger = Ledger()
    ledger.append(make_block(1, ledger.tip_hash, ["a"]))
    ledger.append(make_block(2, ledger.tip_hash, ["b"]))
    assert ledger.verify_chain()
    # Mutate a committed transaction behind the ledger's back.
    ledger.block(1).transactions[0].tx_id = "tampered"
    assert not ledger.verify_chain()


def test_invalid_transactions_stay_on_ledger():
    """Fabric appends invalid transactions too (paper Section 2.2.4)."""
    ledger = Ledger()
    block = make_block(1, ledger.tip_hash, ["good", "bad"])
    block.mark("good", True)
    block.mark("bad", False)
    ledger.append(block)
    assert ledger.find_transaction("bad") is not None
