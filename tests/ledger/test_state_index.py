"""The sorted-key index behind ``StateDatabase.range_scan``.

``range_scan`` used to sort every key on every call — O(n log n) per
scan, and scans sit on the validation hot path for phantom detection.
The bisect-maintained index must stay exactly equivalent to the
brute-force sorted-filter semantics under any interleaving of
``populate`` / ``apply_write`` / ``apply_block_writes``.
"""

from __future__ import annotations

import time

from repro.fabric.peer import Peer
from repro.fabric.rwset import RangeRead
from repro.ledger.state_db import StateDatabase, Version
from repro.sim.distributions import Rng


def brute_force(state: StateDatabase, start, end):
    keys = sorted(key for key, _ in state.items())
    picked = [
        key for key in keys if key >= start and (end is None or key < end)
    ]
    return [(key, state.get(key)) for key in picked]


def test_index_matches_brute_force_under_random_mutation():
    rng = Rng(1234)
    state = StateDatabase()
    state.populate({f"a{i:03d}": i for i in range(20)})
    universe = [f"{prefix}{i:03d}" for prefix in "abc" for i in range(40)]
    for block_id in range(1, 15):
        # A mix of inline writes (Fabric++ style) ...
        for _ in range(rng.randint(0, 3)):
            key = universe[rng.randint(0, len(universe) - 1)]
            state.apply_write(key, block_id, Version(block_id, 0))
        # ... and batched block writes (vanilla style), new + old keys.
        writes = {
            universe[rng.randint(0, len(universe) - 1)]: block_id
            for _ in range(rng.randint(0, 4))
        }
        state.apply_block_writes(block_id, [(1, writes)])
        for start, end in [
            ("a000", "c999"),
            ("b000", None),
            ("a010", "a020"),
            ("zz", None),
            ("", "a005"),
        ]:
            got = list(state.range_scan(start, end))
            assert got == brute_force(state, start, end), (block_id, start, end)


def test_index_has_no_duplicate_keys_after_overwrites():
    state = StateDatabase()
    state.populate({"k1": 0, "k2": 0})
    for block_id in range(1, 6):
        state.apply_write("k1", block_id, Version(block_id, 0))
        state.apply_block_writes(block_id, [(0, {"k2": block_id})])
    assert [key for key, _ in state.range_scan("k", None)] == ["k1", "k2"]


def test_phantom_detection_still_works_through_index():
    state = StateDatabase()
    state.populate({"acct_1": 10, "acct_3": 30})
    observed = tuple(
        (key, entry.version) for key, entry in state.range_scan("acct_", "acct_9")
    )
    scan = RangeRead("acct_", "acct_9", observed)
    assert Peer._range_read_current(state, {}, scan)
    # A key inserted inside the scanned bounds is a phantom.
    state.apply_write("acct_2", 20, Version(5, 0))
    assert not Peer._range_read_current(state, {}, scan)


def test_scan_cost_does_not_resort_all_keys():
    # Not a benchmark, just a guard-rail: scanning a narrow window of a
    # large database must be far cheaper than sorting the whole key set
    # every call. With the old sort-per-scan this ratio blows past 100×.
    state = StateDatabase()
    state.populate({f"k{i:06d}": i for i in range(20000)})

    start = time.perf_counter()
    for _ in range(200):
        list(state.range_scan("k010000", "k010010"))
    narrow = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(200):
        sorted(key for key, _ in state.items())
    full_sort = time.perf_counter() - start

    assert narrow < full_sort
