"""Tests for ledger export/import and catch-up state replay."""

from dataclasses import replace

import pytest

from repro.core.batch_cutter import BatchCutConfig
from repro.errors import LedgerError, LedgerVerificationError
from repro.fabric.config import FabricConfig
from repro.fabric.network import FabricNetwork
from repro.ledger.export import (
    catch_up_from,
    export_ledger,
    import_ledger,
    load_ledger,
    replay_state,
    save_ledger,
)
from repro.ledger.ledger import Ledger
from repro.ledger.state_db import StateDatabase
from repro.workloads.custom import CustomWorkload, CustomWorkloadParams


@pytest.fixture(scope="module")
def finished_network():
    config = replace(
        FabricConfig(),
        clients_per_channel=2,
        client_rate=100.0,
        batch=BatchCutConfig(max_transactions=32),
    )
    workload = CustomWorkload(
        CustomWorkloadParams(num_accounts=300, hot_set_fraction=0.05), seed=4
    )
    network = FabricNetwork(config, workload)
    network.run(duration=1.5, drain=5.0)
    return network, workload


def test_export_round_trip(finished_network):
    network, _workload = finished_network
    ledger = network.reference_peer.channels["ch0"].ledger
    assert ledger.height > 0
    payload = export_ledger(ledger)
    rebuilt = import_ledger(payload)
    assert rebuilt.height == ledger.height
    assert rebuilt.tip_hash == ledger.tip_hash
    assert rebuilt.verify_chain()


def test_export_preserves_validity_flags(finished_network):
    network, _workload = finished_network
    ledger = network.reference_peer.channels["ch0"].ledger
    rebuilt = import_ledger(export_ledger(ledger))
    for original, copy in zip(ledger, rebuilt):
        assert copy.validity == original.validity


def test_import_detects_tampered_digest(finished_network):
    network, _workload = finished_network
    ledger = network.reference_peer.channels["ch0"].ledger
    payload = export_ledger(ledger)
    payload["blocks"][0]["transactions"][0]["digest"] = "00" * 32
    with pytest.raises(LedgerError):
        import_ledger(payload)


def test_import_detects_broken_chain(finished_network):
    network, _workload = finished_network
    ledger = network.reference_peer.channels["ch0"].ledger
    payload = export_ledger(ledger)
    if len(payload["blocks"]) < 2:
        pytest.skip("need at least two blocks")
    payload["blocks"][1]["previous_hash"] = "11" * 32
    with pytest.raises(LedgerError):
        import_ledger(payload)


def test_import_rejects_wrong_schema():
    with pytest.raises(LedgerError):
        import_ledger({"schema_version": 99, "blocks": []})


def test_save_and_load(tmp_path, finished_network):
    network, _workload = finished_network
    ledger = network.reference_peer.channels["ch0"].ledger
    path = tmp_path / "ledger.json"
    save_ledger(path, ledger)
    loaded = load_ledger(path)
    assert loaded.height == ledger.height
    assert loaded.tip_hash == ledger.tip_hash


def test_load_missing_file(tmp_path):
    with pytest.raises(LedgerError):
        load_ledger(tmp_path / "nope.json")


def test_replay_state_matches_live_peer(finished_network):
    """Catch-up: replaying the live ledger rebuilds the exact state."""
    network, workload = finished_network
    live_channel = network.reference_peer.channels["ch0"]
    replayed = replay_state(live_channel.ledger, workload.initial_state())
    assert replayed.last_block_id == live_channel.state.last_block_id
    assert len(replayed) == len(live_channel.state)
    for key, entry in live_channel.state.items():
        assert replayed.get(key).value == entry.value
        assert replayed.get(key).version == entry.version


def test_replay_from_export_matches_versions(finished_network):
    """Even after a JSON round trip (values become reprs), the version
    bookkeeping — what validation depends on — replays identically."""
    network, workload = finished_network
    live_channel = network.reference_peer.channels["ch0"]
    rebuilt_ledger = import_ledger(export_ledger(live_channel.ledger))
    replayed = replay_state(rebuilt_ledger, workload.initial_state())
    for key, entry in live_channel.state.items():
        assert replayed.get(key).version == entry.version


# -- graceful failure on corrupt / truncated exports ----------------------------


def test_import_rejects_non_dict_payload():
    with pytest.raises(LedgerVerificationError):
        import_ledger(["not", "a", "dict"])


def test_import_rejects_missing_blocks_list():
    with pytest.raises(LedgerVerificationError):
        import_ledger({"schema_version": 1, "blocks": "truncated"})


def test_import_reports_offending_block_index(finished_network):
    """A truncated block entry names its index instead of a raw KeyError."""
    network, _workload = finished_network
    payload = export_ledger(network.reference_peer.channels["ch0"].ledger)
    if len(payload["blocks"]) < 2:
        pytest.skip("need at least two blocks")
    del payload["blocks"][1]["transactions"][0]["digest"]
    with pytest.raises(LedgerVerificationError) as excinfo:
        import_ledger(payload)
    assert excinfo.value.block_index == 1
    assert "block index 1" in str(excinfo.value)


def test_import_reports_malformed_hex_block_index(finished_network):
    network, _workload = finished_network
    payload = export_ledger(network.reference_peer.channels["ch0"].ledger)
    payload["blocks"][0]["previous_hash"] = "not-hex"
    with pytest.raises(LedgerVerificationError) as excinfo:
        import_ledger(payload)
    assert excinfo.value.block_index == 0


def test_chain_break_reports_block_index(finished_network):
    network, _workload = finished_network
    payload = export_ledger(network.reference_peer.channels["ch0"].ledger)
    if len(payload["blocks"]) < 2:
        pytest.skip("need at least two blocks")
    payload["blocks"][1]["previous_hash"] = "11" * 32
    with pytest.raises(LedgerVerificationError) as excinfo:
        import_ledger(payload)
    assert excinfo.value.block_index == 1


def test_load_rejects_invalid_json(tmp_path):
    path = tmp_path / "truncated.json"
    path.write_text('{"schema_version": 1, "blocks": [')
    with pytest.raises(LedgerVerificationError):
        load_ledger(path)


def test_verification_error_is_a_ledger_error():
    """Callers catching the historical LedgerError keep working."""
    assert issubclass(LedgerVerificationError, LedgerError)


# -- incremental catch-up (crash recovery path) ---------------------------------


def test_catch_up_from_replays_missed_blocks(finished_network):
    network, workload = finished_network
    source = network.reference_peer.channels["ch0"]
    assert source.ledger.height >= 2
    behind_ledger = Ledger()
    behind_state = StateDatabase()
    behind_state.populate(workload.initial_state())
    # Apply only the first block "live", then catch up the rest.
    first = next(iter(source.ledger))
    replayed = catch_up_from(source.ledger, behind_ledger, behind_state)
    assert replayed == source.ledger.height
    assert first.block_id == 1
    assert behind_ledger.tip_hash == source.ledger.tip_hash
    for key, entry in source.state.items():
        assert behind_state.get(key).value == entry.value
        assert behind_state.get(key).version == entry.version


def test_catch_up_from_is_idempotent(finished_network):
    network, workload = finished_network
    source = network.reference_peer.channels["ch0"]
    ledger = Ledger()
    state = StateDatabase()
    state.populate(workload.initial_state())
    assert catch_up_from(source.ledger, ledger, state) == source.ledger.height
    # A second pull finds nothing new.
    assert catch_up_from(source.ledger, ledger, state) == 0
    assert ledger.tip_hash == source.ledger.tip_hash
