"""End-to-end tracing of the simulated pipeline, and its bit-identity.

Two contracts:

1. **Tracing observes every stage.** A traced run records spans from
   client submit through endorsement, ordering, validation and block
   delivery; the cost attribution reproduces the paper's Figure 1 claim
   that cryptography plus networking dominate; the exported Chrome trace
   document is well-formed.
2. **Tracing is bit-identical to not tracing.** A traced run commits the
   exact same ledger and produces the exact same metrics (minus the
   attached breakdown) as an untraced run — and both still hash to the
   golden values captured before the trace layer existed, so turning
   tracing on can never perturb an experiment it is observing.
"""

import pytest

from repro.bench.harness import run_experiment_with_network
from repro.bench.results import metrics_to_dict
from repro.trace import Tracer, chrome_trace_document, validate_chrome_trace

from tests.integration.test_fault_determinism import (
    GOLDEN_HASHES,
    golden_spec,
    metrics_hash,
)

#: Span names every healthy traced run must record, per pipeline stage.
EXPECTED_SPANS = (
    "tx.lifecycle",   # client: submit -> resolution
    "tx.endorse",     # client: endorsement round trip
    "peer.endorse",   # peer: simulate + sign
    "orderer.queue",  # orderer: arrival -> block cut
    "orderer.cut",    # orderer: batch -> block
    "tx.validate",    # peer: per-transaction validation
    "block.validate", # peer: whole-block validation
    "block.deliver",  # network: block distribution
)


@pytest.fixture(scope="module", params=["vanilla", "fabric++"])
def traced_run(request):
    tracer = Tracer()
    result, network = run_experiment_with_network(
        golden_spec(request.param), tracer=tracer
    )
    return request.param, tracer, result, network


def test_all_pipeline_stages_traced(traced_run):
    _system, tracer, _result, _network = traced_run
    counts = tracer.span_counts()
    for name in EXPECTED_SPANS:
        assert counts.get(name, 0) > 0, f"no {name} spans recorded"
    # Per-transaction span cardinalities line up: every endorsed
    # transaction was queued at the orderer and validated on both peers.
    assert counts["tx.validate"] >= counts["orderer.queue"]
    assert tracer.engine_events > 0
    assert tracer.crypto_ops.get("sign", 0) > 0
    assert tracer.crypto_ops.get("verify", 0) > 0


def test_crypto_and_network_dominate(traced_run):
    """The paper's Figure 1: crypto + network outweigh transaction logic."""
    _system, tracer, _result, _network = traced_run
    breakdown = tracer.breakdown
    assert breakdown.total_seconds > 0
    assert breakdown.crypto_network_share() > 0.5
    assert breakdown.fraction("logic") < breakdown.crypto_network_share()
    # Every canonical resource saw at least some activity.
    for resource in ("sign", "verify", "network", "logic", "ordering", "ledger"):
        assert breakdown.seconds.get(resource, 0.0) > 0.0, resource


def test_breakdown_reaches_metrics_and_summary(traced_run):
    _system, tracer, result, _network = traced_run
    assert result.metrics.cost_breakdown is tracer.breakdown
    summary = result.metrics.summary()
    assert summary["crypto_network_share"] == pytest.approx(
        tracer.breakdown.crypto_network_share(), abs=1e-4
    )
    snapshot = metrics_to_dict(result.metrics)
    assert snapshot["cost_breakdown"] == tracer.breakdown.to_dict()


def test_exported_chrome_trace_is_valid(traced_run):
    _system, tracer, _result, _network = traced_run
    counts = validate_chrome_trace(chrome_trace_document(tracer))
    assert counts["X"] > 0 and counts["b"] > 0 and counts["i"] > 0
    assert counts["b"] == counts["e"]


def test_reorder_wall_clock_stays_in_span_args(traced_run):
    """The wall-clock channel: elapsed_seconds appears only in trace args,
    never in deterministic result fields."""
    system, tracer, result, _network = traced_run
    cuts = [span for span in tracer.spans() if span.name == "orderer.cut"]
    assert cuts
    for span in cuts:
        assert "reorder_wall_seconds" in span.args
        assert span.args["reorder_wall_seconds"] >= 0.0
    if system == "fabric++":
        assert any(span.args["reorder_wall_seconds"] > 0.0 for span in cuts)
    snapshot = metrics_to_dict(result.metrics)
    assert not any("wall" in key or "elapsed" in key for key in snapshot)


@pytest.mark.parametrize("system", ["vanilla", "fabric++"])
def test_traced_run_is_bit_identical_to_untraced(system):
    """The golden contract: tracing must not change a single committed byte."""
    untraced_result, untraced_network = run_experiment_with_network(
        golden_spec(system)
    )
    tracer = Tracer()
    traced_result, traced_network = run_experiment_with_network(
        golden_spec(system), tracer=tracer
    )
    assert tracer.spans(), "tracer observed nothing"

    # Identical ledgers, block for block.
    for channel in untraced_network.channels:
        untraced_ledger = untraced_network.reference_peer.channels[channel].ledger
        traced_ledger = traced_network.reference_peer.channels[channel].ledger
        assert traced_ledger.height == untraced_ledger.height
        assert traced_ledger.tip_hash == untraced_ledger.tip_hash

    # Identical metrics, except for the attached breakdown.
    untraced_snapshot = metrics_to_dict(untraced_result.metrics)
    traced_snapshot = metrics_to_dict(traced_result.metrics)
    assert "cost_breakdown" not in untraced_snapshot
    # Untraced result rows carry no trace-era keys at all.
    assert "crypto_network_share" not in untraced_result.row()
    traced_snapshot.pop("cost_breakdown")
    assert traced_snapshot == untraced_snapshot

    # And both still match the pre-trace golden capture.
    assert metrics_hash(untraced_result.metrics) == GOLDEN_HASHES[system]
    assert metrics_hash(traced_result.metrics) == GOLDEN_HASHES[system]


def test_untraced_pipeline_attaches_no_observability_state():
    """Without a tracer the network carries no trace hooks at all."""
    _result, network = run_experiment_with_network(golden_spec("vanilla"))
    assert network.tracer is None
    assert network.env._trace_hook is None
    for peer in network.peers:
        assert peer.tracer is None
    for orderer in network.orderers.values():
        assert orderer.tracer is None
