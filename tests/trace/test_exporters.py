"""Exporter tests: Chrome trace generation, CSV, and the validator."""

import csv
import io
import json

import pytest

from repro.errors import ReproError
from repro.trace import (
    ASYNC,
    Tracer,
    chrome_trace_document,
    chrome_trace_events,
    trace_csv,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
)


def sample_tracer() -> Tracer:
    tracer = Tracer()
    # Properly nested sync spans on one track.
    tracer.span("outer", cat="validate", track="peer1", start=0.0, end=1.0)
    tracer.span("inner", cat="validate", track="peer1", start=0.2, end=0.4)
    # Overlapping async spans keyed by tx id.
    tracer.span("tx.endorse", cat="client", track="c", start=0.0, end=0.6,
                tx_id="tx-a", mode=ASYNC)
    tracer.span("tx.endorse", cat="client", track="c", start=0.1, end=0.9,
                tx_id="tx-b", mode=ASYNC)
    tracer.instant("block.deliver", cat="net", track="net", block_id=1)
    tracer.counter("queue", 3.0, t=0.5)
    return tracer


def test_chrome_events_have_expected_phases():
    events = chrome_trace_events(sample_tracer())
    phases = [event["ph"] for event in events]
    # Process metadata + one thread_name per distinct track.
    assert phases.count("M") == 1 + 3
    assert phases.count("X") == 2
    assert phases.count("b") == 2 and phases.count("e") == 2
    assert phases.count("i") == 1
    assert phases.count("C") == 1


def test_chrome_timestamps_are_microseconds():
    events = chrome_trace_events(sample_tracer())
    inner = next(e for e in events if e.get("name") == "inner")
    assert inner["ts"] == pytest.approx(0.2e6)
    assert inner["dur"] == pytest.approx(0.2e6)


def test_async_events_carry_tx_id():
    events = chrome_trace_events(sample_tracer())
    begins = [e for e in events if e["ph"] == "b"]
    assert {e["id"] for e in begins} == {"tx-a", "tx-b"}
    assert all(e["args"]["tx_id"] == e["id"] for e in begins)


def test_document_validates_and_is_json_serialisable(tmp_path):
    tracer = sample_tracer()
    document = chrome_trace_document(tracer)
    assert validate_chrome_trace(document)["X"] == 2
    assert document["otherData"]["spans"] == 5
    path = tmp_path / "trace.json"
    write_chrome_trace(path, tracer)
    counts = validate_chrome_trace_file(path)
    assert counts == validate_chrome_trace(json.loads(path.read_text()))


def test_csv_round_trip():
    text = trace_csv(sample_tracer())
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == 5
    outer = next(row for row in rows if row["name"] == "outer")
    assert float(outer["start"]) == 0.0
    assert float(outer["duration"]) == 1.0
    assert outer["tx_id"] == ""
    endorse = next(row for row in rows if row["tx_id"] == "tx-a")
    assert endorse["name"] == "tx.endorse"
    assert json.loads(endorse["args"]) == {}


# -- validator rejections -------------------------------------------------------


def test_validator_rejects_missing_envelope():
    with pytest.raises(ReproError, match="traceEvents"):
        validate_chrome_trace({"events": []})
    with pytest.raises(ReproError, match="no events"):
        validate_chrome_trace({"traceEvents": []})


def test_validator_rejects_unknown_phase():
    with pytest.raises(ReproError, match="unknown phase"):
        validate_chrome_trace(
            {"traceEvents": [{"ph": "Z", "ts": 0, "pid": 1, "tid": 1}]}
        )


def test_validator_rejects_unbalanced_async():
    document = chrome_trace_document(sample_tracer())
    document["traceEvents"] = [
        event for event in document["traceEvents"]
        if not (event["ph"] == "e" and event.get("id") == "tx-b")
    ]
    with pytest.raises(ReproError, match="unbalanced async"):
        validate_chrome_trace(document)


def test_validator_rejects_overlapping_sync_spans():
    tracer = Tracer()
    tracer.span("first", cat="c", track="t", start=0.0, end=1.0)
    tracer.span("second", cat="c", track="t", start=0.5, end=1.5)
    with pytest.raises(ReproError, match="nest"):
        validate_chrome_trace(chrome_trace_document(tracer))


def test_validator_accepts_back_to_back_sync_spans():
    tracer = Tracer()
    tracer.span("first", cat="c", track="t", start=0.0, end=1.0)
    tracer.span("second", cat="c", track="t", start=1.0, end=2.0)
    counts = validate_chrome_trace(chrome_trace_document(tracer))
    assert counts["X"] == 2


def test_validator_rejects_negative_duration():
    with pytest.raises(ReproError, match="negative dur"):
        validate_chrome_trace(
            {
                "traceEvents": [
                    {"ph": "X", "ts": 0, "dur": -1, "pid": 1, "tid": 1}
                ]
            }
        )


def test_validator_rejects_unreadable_file(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(ReproError, match="cannot read"):
        validate_chrome_trace_file(path)
