"""Span-ring eviction surfacing: the profile report and the CLI warning.

A bounded span ring silently overwriting old spans would quietly skew
the cost attribution that ``repro profile`` reproduces from the paper's
Figure 1. These tests pin the contract: evictions show up both as a
``spans_dropped`` column in the summary table and as a stderr warning
naming the count, the capacity, and the ``--trace-ring`` remedy — and a
large-enough ring stays silent.
"""

from repro.cli import main

PROFILE_ARGS = [
    "profile", "--workload", "blank", "--clients", "1",
    "--client-rate", "60", "--duration", "1", "--drain", "1",
    "--block-size", "16",
]


def test_small_ring_warns_and_reports_drops(capsys):
    exit_code = main(PROFILE_ARGS + ["--trace-ring", "64"])
    assert exit_code == 0
    captured = capsys.readouterr()
    assert "spans_dropped" in captured.out
    assert "trace ring overflowed" in captured.err
    assert "capacity 64" in captured.err
    assert "--trace-ring" in captured.err


def test_large_ring_stays_silent(capsys):
    exit_code = main(PROFILE_ARGS + ["--trace-ring", "500000"])
    assert exit_code == 0
    captured = capsys.readouterr()
    assert "trace ring overflowed" not in captured.err
    # The column still exists and reports zero drops.
    assert "spans_dropped" in captured.out


def test_run_with_trace_and_small_ring_warns(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    exit_code = main(
        ["run", "--workload", "blank", "--clients", "1",
         "--client-rate", "60", "--duration", "1", "--drain", "1",
         "--block-size", "16", "--trace", str(trace_path),
         "--trace-ring", "64"]
    )
    assert exit_code == 0
    captured = capsys.readouterr()
    assert "trace ring overflowed" in captured.err
    assert trace_path.exists()
