"""Unit tests for the tracer core: spans, ring buffer, cost breakdown."""

import pytest

from repro.sim.engine import Environment
from repro.trace import (
    ASYNC,
    INSTANT,
    SYNC,
    CostBreakdown,
    RESOURCES,
    Span,
    TraceBuffer,
    Tracer,
)


# -- ring buffer ----------------------------------------------------------------


def make_span(index: int) -> Span:
    return Span(
        name=f"s{index}", cat="test", track="t", start=float(index),
        end=float(index) + 0.5,
    )


def test_buffer_rejects_zero_capacity():
    with pytest.raises(ValueError):
        TraceBuffer(capacity=0)


def test_buffer_keeps_everything_below_capacity():
    buffer = TraceBuffer(capacity=10)
    for index in range(7):
        buffer.append(make_span(index))
    assert len(buffer) == 7
    assert buffer.dropped == 0
    assert [span.name for span in buffer.spans()] == [f"s{i}" for i in range(7)]


def test_buffer_evicts_oldest_first_when_full():
    buffer = TraceBuffer(capacity=4)
    for index in range(7):
        buffer.append(make_span(index))
    assert len(buffer) == 4
    assert buffer.dropped == 3
    # The three oldest (s0, s1, s2) were overwritten; order stays oldest-first.
    assert [span.name for span in buffer.spans()] == ["s3", "s4", "s5", "s6"]


def test_buffer_wraps_repeatedly():
    buffer = TraceBuffer(capacity=2)
    for index in range(10):
        buffer.append(make_span(index))
    assert buffer.dropped == 8
    assert [span.name for span in buffer.spans()] == ["s8", "s9"]


# -- tracer ---------------------------------------------------------------------


def test_span_default_end_uses_bound_clock():
    env = Environment()
    tracer = Tracer()
    tracer.bind(env)
    def tick():
        yield env.timeout(1.5)

    env.process(tick(), name="tick")
    env.run(until=2.0)
    span = tracer.span("work", cat="test", track="t", start=0.5)
    assert span.end == env.now
    assert span.duration == pytest.approx(env.now - 0.5)


def test_engine_hook_counts_events():
    env = Environment()
    tracer = Tracer()
    tracer.bind(env)

    def ticker():
        for _ in range(3):
            yield env.timeout(0.1)

    env.process(ticker(), name="ticker")
    env.run(until=1.0)
    assert tracer.engine_events > 0


def test_instant_records_point_in_time():
    tracer = Tracer()
    span = tracer.instant("mark", cat="test", track="t", tx_id="tx1", extra=3)
    assert span.mode == INSTANT
    assert span.start == span.end
    assert span.args == {"extra": 3}


def test_span_counts_and_summary():
    tracer = Tracer()
    tracer.span("a", cat="c", track="t", start=0.0, end=1.0)
    tracer.span("a", cat="c", track="t", start=1.0, end=2.0, mode=ASYNC)
    tracer.span("b", cat="c", track="t", start=0.0, end=0.5)
    tracer.counter("queue", 4.0, t=0.25)
    tracer.charge("sign", 0.5, count=2)
    tracer.record_crypto_op("sign", 100)
    tracer.record_crypto_op("verify", 64)
    tracer.record_crypto_op("verify", 64)
    assert tracer.span_counts() == {"a": 2, "b": 1}
    summary = tracer.summary()
    assert summary["spans"] == 3
    assert summary["spans_dropped"] == 0
    assert summary["counter_samples"] == 1
    assert summary["crypto_ops"] == {"sign": 1, "verify": 2}
    assert summary["attributed_seconds"] == pytest.approx(0.5)


# -- cost breakdown -------------------------------------------------------------


def test_breakdown_charges_accumulate():
    breakdown = CostBreakdown()
    breakdown.charge("sign", 0.2, count=4)
    breakdown.charge("sign", 0.3)
    breakdown.charge("network", 0.5, count=2)
    assert breakdown.seconds["sign"] == pytest.approx(0.5)
    assert breakdown.operations["sign"] == 5
    assert breakdown.total_seconds == pytest.approx(1.0)
    assert breakdown.crypto_seconds == pytest.approx(0.5)
    assert breakdown.network_seconds == pytest.approx(0.5)
    assert breakdown.fraction("sign") == pytest.approx(0.5)
    assert breakdown.crypto_network_share() == pytest.approx(1.0)


def test_breakdown_empty_is_safe():
    breakdown = CostBreakdown()
    assert breakdown.total_seconds == 0.0
    assert breakdown.fraction("sign") == 0.0
    assert breakdown.crypto_network_share() == 0.0
    assert breakdown.rows() == []


def test_breakdown_rows_follow_canonical_order():
    breakdown = CostBreakdown()
    for resource in reversed(RESOURCES):
        breakdown.charge(resource, 0.1)
    assert [row["resource"] for row in breakdown.rows()] == list(RESOURCES)


def test_breakdown_round_trips_through_dict():
    breakdown = CostBreakdown()
    breakdown.charge("verify", 0.125, count=3)
    breakdown.charge("ledger", 0.5)
    clone = CostBreakdown.from_dict(breakdown.to_dict())
    assert clone == breakdown


def test_breakdown_table_mentions_share():
    breakdown = CostBreakdown()
    breakdown.charge("sign", 0.75)
    breakdown.charge("logic", 0.25)
    table = breakdown.table(title="test")
    assert "crypto + network share: 75.0%" in table
    assert "sign" in table and "logic" in table
