"""Checkpoint persistence: atomic files, retention, corruption handling."""

import json
from dataclasses import replace

import pytest

from repro.bench.spec import ExperimentSpec
from repro.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointOptions,
    load_checkpoint,
    load_latest_checkpoint,
    run_with_checkpoints,
    spec_from_checkpoint,
)
from repro.core.batch_cutter import BatchCutConfig
from repro.errors import CheckpointError
from repro.fabric.config import FabricConfig
from repro.workloads.registry import WorkloadRef


def make_spec() -> ExperimentSpec:
    config = replace(
        FabricConfig(),
        batch=BatchCutConfig(max_transactions=16),
        clients_per_channel=2,
        client_rate=90.0,
        seed=7,
    )
    workload = WorkloadRef("smallbank", {"num_users": 40, "s_value": 1.0}, seed=2)
    return ExperimentSpec(
        config=config, workload=workload, duration=1.6, drain=0.5
    )


@pytest.fixture(scope="module")
def checkpoint_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("checkpoints")
    result, _network, checkpointer = run_with_checkpoints(
        make_spec(), CheckpointOptions(every=0.5, directory=directory)
    )
    assert result is not None
    assert len(checkpointer.checkpoints) == 4
    return directory


def test_files_use_sequential_zero_padded_names(checkpoint_dir):
    names = sorted(p.name for p in checkpoint_dir.iterdir())
    assert names == [
        "checkpoint-000001.json",
        "checkpoint-000002.json",
        "checkpoint-000003.json",
        "checkpoint-000004.json",
    ]
    # Atomic publish never leaves temp files behind.
    assert not list(checkpoint_dir.glob("*.tmp"))


def test_load_checkpoint_round_trips(checkpoint_dir):
    payload = load_checkpoint(checkpoint_dir / "checkpoint-000002.json")
    assert payload["schema"] == CHECKPOINT_SCHEMA
    assert payload["index"] == 2
    assert payload["time"] == pytest.approx(1.0)
    spec = spec_from_checkpoint(payload)
    assert isinstance(spec, ExperimentSpec)
    assert spec.duration == 1.6


def test_load_latest_prefers_newest_index(checkpoint_dir):
    assert load_latest_checkpoint(checkpoint_dir)["index"] == 4


def test_load_latest_skips_corrupt_newest_file(checkpoint_dir, tmp_path):
    for path in checkpoint_dir.iterdir():
        (tmp_path / path.name).write_bytes(path.read_bytes())
    (tmp_path / "checkpoint-000004.json").write_text("{ torn write")
    payload = load_latest_checkpoint(tmp_path)
    assert payload["index"] == 3


def test_load_latest_reports_every_failure(tmp_path):
    (tmp_path / "checkpoint-000001.json").write_text("not json")
    with pytest.raises(CheckpointError) as excinfo:
        load_latest_checkpoint(tmp_path)
    assert "no loadable checkpoint" in str(excinfo.value)
    assert "checkpoint-000001.json" in str(excinfo.value)


def test_load_missing_target_fails(tmp_path):
    with pytest.raises(CheckpointError):
        load_latest_checkpoint(tmp_path / "does-not-exist")


def test_schema_mismatch_rejected(checkpoint_dir, tmp_path):
    payload = load_checkpoint(checkpoint_dir / "checkpoint-000001.json")
    payload["schema"] = CHECKPOINT_SCHEMA + 1
    bad = tmp_path / "checkpoint-000001.json"
    bad.write_text(json.dumps(payload))
    with pytest.raises(CheckpointError) as excinfo:
        load_checkpoint(bad)
    assert "schema" in str(excinfo.value)


def test_missing_field_rejected(checkpoint_dir, tmp_path):
    payload = load_checkpoint(checkpoint_dir / "checkpoint-000001.json")
    del payload["snapshot"]
    bad = tmp_path / "checkpoint-000001.json"
    bad.write_text(json.dumps(payload))
    with pytest.raises(CheckpointError) as excinfo:
        load_checkpoint(bad)
    assert "snapshot" in str(excinfo.value)


def test_corrupt_spec_rejected(checkpoint_dir):
    payload = load_checkpoint(checkpoint_dir / "checkpoint-000001.json")
    payload = dict(payload, spec="deadbeef")
    with pytest.raises(CheckpointError) as excinfo:
        spec_from_checkpoint(payload)
    assert "spec" in str(excinfo.value)


def test_keep_retains_only_newest_files(tmp_path):
    _result, _network, checkpointer = run_with_checkpoints(
        make_spec(), CheckpointOptions(every=0.5, directory=tmp_path, keep=2)
    )
    assert len(checkpointer.checkpoints) == 4
    assert sorted(p.name for p in tmp_path.iterdir()) == [
        "checkpoint-000003.json",
        "checkpoint-000004.json",
    ]
