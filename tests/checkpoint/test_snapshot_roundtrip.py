"""Property tests for snapshot capture over randomly-configured runs.

``repro.testing.snapshot_roundtrip`` is the reusable oracle: every RNG
stream and resource reachable from a live network must restore exactly
from its snapshotted state. Hypothesis drives it over random configs,
durations, and both systems; a second property checks that capturing a
snapshot is read-only (capturing twice at the same boundary yields the
identical payload, and the run continues unperturbed).
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkpoint import capture_snapshot
from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.fabric.network import FabricNetwork
from repro.testing import snapshot_roundtrip
from repro.workloads.registry import make_workload


def build_network(seed, fabric_plus_plus, max_transactions, rate):
    config = replace(
        FabricConfig(),
        batch=BatchCutConfig(max_transactions=max_transactions),
        clients_per_channel=2,
        client_rate=rate,
        seed=seed,
    )
    if fabric_plus_plus:
        config = config.with_fabric_plus_plus()
    workload = make_workload(
        "smallbank", seed=seed + 1, num_users=30, s_value=1.0
    )
    return FabricNetwork(config, workload)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    fabric_plus_plus=st.booleans(),
    max_transactions=st.sampled_from([8, 16, 32]),
    rate=st.sampled_from([60.0, 90.0, 120.0]),
    boundary=st.floats(min_value=0.3, max_value=0.9),
)
def test_snapshot_roundtrip_mid_run(
    seed, fabric_plus_plus, max_transactions, rate, boundary
):
    network = build_network(seed, fabric_plus_plus, max_transactions, rate)
    network.begin(duration=1.0)
    network.env.run(until=boundary)
    found = snapshot_roundtrip(network)
    assert found["rng_streams"] > 0
    assert found["resources"] > 0


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    fabric_plus_plus=st.booleans(),
)
def test_capture_is_read_only(seed, fabric_plus_plus):
    network = build_network(seed, fabric_plus_plus, 16, 90.0)
    network.begin(duration=1.0)
    network.env.run(until=0.5)
    first = capture_snapshot(network, 0.5)
    second = capture_snapshot(network, 0.5)
    assert first == second

    # The probed twin must finish exactly like an unprobed control.
    network.env.run(until=1.0)
    network.finish(duration=1.0)
    control = build_network(seed, fabric_plus_plus, 16, 90.0)
    control.begin(duration=1.0)
    control.env.run(until=1.0)
    control.finish(duration=1.0)
    assert capture_snapshot(network, 1.0) == capture_snapshot(control, 1.0)
