"""The resume oracle: kill + resume is byte-identical to running through.

For every combination of seed x system x channel count, a run killed at
a checkpoint boundary and resumed must produce exactly the ledger export
hashes and the metrics snapshot of the uninterrupted control — and the
segmented checkpoint loop itself must be observationally invisible
(``checkpoint_every=None`` stays the golden path, checkpointed runs
match it bit for bit).
"""

from dataclasses import replace

import pytest

from repro.bench.harness import run_experiment_with_network
from repro.bench.results import metrics_to_dict
from repro.bench.spec import ExperimentSpec
from repro.checkpoint import (
    CheckpointOptions,
    ledger_digest,
    resume_run,
    run_with_checkpoints,
)
from repro.core.batch_cutter import BatchCutConfig
from repro.errors import CheckpointError, ConfigError
from repro.fabric.config import FabricConfig
from repro.workloads.registry import WorkloadRef

WORKLOAD = WorkloadRef("smallbank", {"num_users": 60, "s_value": 1.0}, seed=3)


def make_spec(seed: int, system: str, channels: int) -> ExperimentSpec:
    config = replace(
        FabricConfig(),
        batch=BatchCutConfig(max_transactions=16),
        clients_per_channel=2,
        client_rate=90.0,
        channels=channels,
        cross_channel_fraction=0.1 if channels > 1 else 0.0,
        seed=seed,
    )
    if system == "fabric++":
        config = config.with_fabric_plus_plus()
    return ExperimentSpec(
        config=config, workload=WORKLOAD, duration=1.2, drain=1.0
    )


def fingerprints(result, network):
    """(per-channel ledger digests, canonical metrics dict) of one run."""
    runtimes = getattr(network, "runtimes", None) or [network]
    ledgers = {
        channel: ledger_digest(
            runtime.reference_peer.channels[channel].ledger
        )
        for runtime in runtimes
        for channel in runtime.channels
    }
    return ledgers, metrics_to_dict(result.metrics)


@pytest.mark.parametrize("seed", [3, 11])
@pytest.mark.parametrize("system", ["fabric", "fabric++"])
@pytest.mark.parametrize("channels", [1, 4])
def test_kill_and_resume_matches_uninterrupted_run(seed, system, channels):
    spec = make_spec(seed, system, channels)

    control_result, control_network = run_experiment_with_network(spec)
    control = fingerprints(control_result, control_network)

    # Checkpointing off the same spec must not perturb the run at all.
    ck_result, ck_network, checkpointer = run_with_checkpoints(
        spec, CheckpointOptions(every=0.5)
    )
    assert checkpointer.checkpoints, "no checkpoint landed inside the run"
    assert fingerprints(ck_result, ck_network) == control

    # Kill right after the first checkpoint, then resume: byte-identical.
    killed_result, _network, killed = run_with_checkpoints(
        spec, CheckpointOptions(every=0.5, stop_after=1)
    )
    assert killed_result is None
    resumed_result, resumed_network, _ = resume_run(killed.latest)
    assert fingerprints(resumed_result, resumed_network) == control


@pytest.mark.parametrize("system", ["fabric", "fabric++"])
def test_kill_and_resume_with_pruning(system):
    spec = make_spec(5, system, 1)
    control_result, control_network, _ = run_with_checkpoints(
        spec, CheckpointOptions(every=0.4, prune=True)
    )
    ledger = control_network.reference_peer.channels["ch0"].ledger
    assert ledger.continuity is not None, "prune never engaged"
    assert ledger.verify_chain()

    killed_result, _network, killed = run_with_checkpoints(
        spec, CheckpointOptions(every=0.4, prune=True, stop_after=2)
    )
    assert killed_result is None
    resumed_result, resumed_network, _ = resume_run(killed.latest)
    assert fingerprints(resumed_result, resumed_network) == fingerprints(
        control_result, control_network
    )
    # Pruning must not change what the run *measures* — only what the
    # ledger retains. Metrics equal the unpruned control's exactly.
    plain_result, _plain_network = run_experiment_with_network(spec)
    assert metrics_to_dict(resumed_result.metrics) == metrics_to_dict(
        plain_result.metrics
    )


def test_tampered_snapshot_raises_checkpoint_error():
    spec = make_spec(3, "fabric", 1)
    _result, _network, killed = run_with_checkpoints(
        spec, CheckpointOptions(every=0.5, stop_after=1)
    )
    import copy

    tampered = copy.deepcopy(killed.latest)
    tampered["snapshot"]["rng"]["digest"] = "00" * 32
    with pytest.raises(CheckpointError) as excinfo:
        resume_run(tampered)
    assert "rng" in str(excinfo.value)


def test_resume_continues_writing_checkpoints(tmp_path):
    spec = make_spec(3, "fabric", 1)
    _result, _network, killed = run_with_checkpoints(
        spec,
        CheckpointOptions(every=0.5, directory=tmp_path, stop_after=1),
    )
    assert sorted(p.name for p in tmp_path.iterdir()) == [
        "checkpoint-000001.json"
    ]
    resumed_result, _network, _ = resume_run(tmp_path)
    assert resumed_result is not None
    names = sorted(p.name for p in tmp_path.iterdir())
    assert names[0] == "checkpoint-000001.json"
    assert len(names) > 1, "resume did not write the later checkpoints"


def test_options_validation():
    with pytest.raises(ConfigError):
        CheckpointOptions(every=0.0)
    with pytest.raises(ConfigError):
        CheckpointOptions(every=1.0, keep=0)


def test_unpicklable_spec_fails_fast():
    from repro.checkpoint import Checkpointer
    from repro.workloads.registry import make_workload

    workload = make_workload("smallbank", seed=1, num_users=10)
    spec = ExperimentSpec(
        config=FabricConfig(),
        workload=lambda channel: workload,  # closures cannot checkpoint
        duration=1.0,
    )
    with pytest.raises(CheckpointError) as excinfo:
        Checkpointer(spec, CheckpointOptions(every=0.5))
    assert "WorkloadRef" in str(excinfo.value)
