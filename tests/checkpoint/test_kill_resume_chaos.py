"""Chaos across the restore boundary: kill, resume, then check invariants.

``run_kill_resume_chaos`` runs a faulted experiment (crashes, partitions,
lossy links) to completion as a control, reruns it with checkpointing +
pruning, kills it at a checkpoint boundary, resumes, and then demands
(a) the resumed fleet's snapshot is byte-identical to the control's and
(b) the five chaos invariants plus liveness hold on the resumed fleet.
"""

import pytest

from repro.chaos import run_kill_resume_chaos


@pytest.mark.parametrize(
    "seed,fabric_plus_plus", [(7, False), (11, True)]
)
def test_kill_resume_chaos_passes(seed, fabric_plus_plus):
    report = run_kill_resume_chaos(seed, fabric_plus_plus=fabric_plus_plus)
    assert report.passed, report.details
    assert all(report.invariants.values())
    assert report.liveness and report.converged
    assert any("resumed" in fault for fault in report.faults)
