"""The CC-strategy registry and its plumbing: registration API, config
threading (``cc_strategy`` / ``resolved_cc_strategy``), CLI flag, sweep
axis, cache fingerprint, and ValidationStats serialisation."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench.cache import spec_fingerprint
from repro.bench.spec import ExperimentSpec
from repro.cli import SWEEPABLE, build_parser, config_from_args
from repro.core.batch_cutter import BatchCutConfig
from repro.errors import ConfigError
from repro.fabric.config import FabricConfig
from repro.fabric.metrics import ValidationStats
from repro.validation.registry import (
    StrategyInfo,
    get_strategy,
    register_strategy,
    strategy_names,
)
from repro.workloads.registry import WorkloadRef


def parse(argv):
    return build_parser().parse_args(argv)


# -- registry API ----------------------------------------------------------


def test_builtin_strategies_are_registered():
    assert strategy_names() == ("depaware", "dependency", "lockless", "serial")


def test_get_strategy_returns_info_with_description():
    info = get_strategy("lockless")
    assert isinstance(info, StrategyInfo)
    assert info.name == "lockless"
    assert info.description
    assert info.divergence  # lockless documents its abort-set divergence


def test_equivalent_strategies_declare_no_divergence():
    for name in ("serial", "dependency", "depaware"):
        assert get_strategy(name).divergence == ""


def test_get_strategy_rejects_unknown_name():
    with pytest.raises(ConfigError, match="optimistic"):
        get_strategy("optimistic")


def test_register_strategy_rejects_duplicates():
    with pytest.raises(ConfigError, match="serial"):
        register_strategy(
            "serial", lambda peer, channel: iter(()), description="imposter"
        )


# -- config threading ------------------------------------------------------


def test_default_config_resolves_to_serial():
    config = FabricConfig()
    config.validate()
    assert config.cc_strategy == "serial"
    assert config.resolved_cc_strategy == "serial"


def test_cc_strategy_overrides_resolution():
    config = replace(FabricConfig(), cc_strategy="lockless")
    config.validate()
    assert config.resolved_cc_strategy == "lockless"


def test_serial_cc_strategy_defers_to_legacy_scheduler_knob():
    config = replace(FabricConfig(), validation_scheduler="dependency")
    config.validate()
    assert config.resolved_cc_strategy == "dependency"


def test_config_rejects_unknown_cc_strategy():
    config = replace(FabricConfig(), cc_strategy="optimistic")
    with pytest.raises(ConfigError, match="cc_strategy"):
        config.validate()


def test_config_rejects_conflicting_cc_knobs():
    config = replace(
        FabricConfig(),
        cc_strategy="lockless",
        validation_scheduler="dependency",
    )
    with pytest.raises(ConfigError, match="conflicts"):
        config.validate()


def test_matching_cc_knobs_are_not_a_conflict():
    config = replace(
        FabricConfig(),
        cc_strategy="dependency",
        validation_scheduler="dependency",
    )
    config.validate()
    assert config.resolved_cc_strategy == "dependency"


# -- CLI -------------------------------------------------------------------


def test_cli_forwards_cc_strategy():
    config = config_from_args(parse(["run", "--cc-strategy", "lockless"]))
    assert config.cc_strategy == "lockless"
    assert config.resolved_cc_strategy == "lockless"


def test_cli_default_cc_strategy_keeps_legacy_validator():
    config = config_from_args(parse(["run"]))
    assert config.cc_strategy == "serial"
    assert not config.uses_validation_pipeline


def test_cli_rejects_unknown_cc_strategy():
    with pytest.raises(SystemExit):
        parse(["run", "--cc-strategy", "optimistic"])


def test_cc_strategy_is_sweepable():
    assert "cc-strategy" in SWEEPABLE
    field, caster = SWEEPABLE["cc-strategy"]
    assert field == "cc_strategy"
    assert caster("lockless") == "lockless"


# -- cache fingerprint -----------------------------------------------------


def small_spec(config):
    return ExperimentSpec(
        config=config, workload=WorkloadRef("blank"), duration=1.0
    )


def test_fingerprint_distinguishes_cc_strategies():
    base = replace(
        FabricConfig(),
        clients_per_channel=1,
        client_rate=100.0,
        batch=BatchCutConfig(max_transactions=32),
    )
    variants = [base] + [
        replace(base, cc_strategy=name)
        for name in ("lockless", "depaware", "dependency")
    ]
    fingerprints = [spec_fingerprint(small_spec(c)) for c in variants]
    assert len(set(fingerprints)) == len(fingerprints)


# -- ValidationStats serialisation -----------------------------------------


def test_validation_stats_strategy_round_trip():
    stats = ValidationStats(
        workers=2, scheduler="lockless", pipeline_depth=1, strategy="lockless"
    )
    data = stats.to_dict()
    assert data["strategy"] == "lockless"
    assert ValidationStats.from_dict(data) == stats


def test_validation_stats_strategy_defaults_to_scheduler_on_old_snapshots():
    stats = ValidationStats(workers=4, scheduler="dependency", pipeline_depth=2)
    data = stats.to_dict()
    del data["strategy"]  # snapshot written before the field existed
    restored = ValidationStats.from_dict(data)
    assert restored.strategy == "dependency"
    assert restored.summary(duration=1.0)["strategy"] == "dependency"
