"""Acceptance oracle: the validation pipeline never changes *what* commits.

For every seed × system × scheduler × worker-count (× pipeline depth),
replaying the same ordered block stream must yield a bit-identical
ledger export and identical per-transaction outcomes — only the
simulated timing may differ. The block stream is captured once from a
live run under the default (serial, workers=1) configuration, then fed
through ``deliver_block`` into fresh networks whose clients never start,
so the replay is a pure function of the validator under test.
"""

from __future__ import annotations

import hashlib
import json
from copy import deepcopy
from dataclasses import replace
from functools import lru_cache

import pytest

from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.fabric.network import FabricNetwork
from repro.ledger.export import export_ledger
from repro.workloads.registry import WorkloadRef

CHANNEL = "ch0"
SEEDS = (7, 11)
SYSTEMS = ("vanilla", "fabric++")
#: (scheduler, validation_workers, pipeline_depth) — the acceptance
#: matrix: both schedulers across the worker counts, plus deep pipelines.
VARIANTS = (
    ("serial", 1, 1),
    ("serial", 2, 1),
    ("serial", 4, 1),
    ("serial", 8, 1),
    ("dependency", 1, 1),
    ("dependency", 2, 1),
    ("dependency", 4, 1),
    ("dependency", 8, 1),
    ("dependency", 4, 2),
    ("serial", 1, 3),
)


def base_config(seed: int, system: str) -> FabricConfig:
    config = FabricConfig(
        batch=BatchCutConfig(max_transactions=32),
        clients_per_channel=2,
        client_rate=150.0,
        seed=seed,
    )
    return (
        config.with_fabric_plus_plus()
        if system == "fabric++"
        else config.with_vanilla()
    )


def make_workload(seed: int):
    # Small key space → real MVCC conflicts, range reads via smallbank's
    # analytics mix, write-write chains within blocks.
    return WorkloadRef(
        "smallbank",
        {"num_users": 200, "prob_write": 0.95, "s_value": 1.0},
        seed=seed,
    ).build()


def strip(block):
    """Copy a captured block back to its pre-validation shape."""
    block = deepcopy(block)
    block.validity.clear()
    for tx in block.transactions:
        tx.failure_reason = None
    return block


def fingerprint(ledger) -> str:
    payload = export_ledger(ledger)
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def outcome_table(ledger):
    return [
        (
            block.block_id,
            tuple(sorted(block.validity.items())),
            tuple(
                (tx.tx_id, tx.failure_reason) for tx in block.transactions
            ),
        )
        for block in ledger
    ]


@lru_cache(maxsize=None)
def capture(seed: int, system: str):
    """Run the default serial configuration live and keep its blocks."""
    config = base_config(seed, system)
    assert not config.uses_validation_pipeline
    network = FabricNetwork(config, make_workload(seed))
    network.run(duration=0.8, drain=2.0)
    ledger = network.reference_peer.channels[CHANNEL].ledger
    blocks = [deepcopy(block) for block in ledger]
    assert len(blocks) >= 3, "capture produced too few blocks to be a test"
    assert any(
        not valid for block in blocks for valid in block.validity.values()
    ), "capture has no MVCC aborts; the oracle would not exercise conflicts"
    return blocks, fingerprint(ledger), outcome_table(ledger)


def replay(config: FabricConfig, blocks):
    """Feed the captured stream through a fresh peer's validator."""
    network = FabricNetwork(config, make_workload(config.seed))
    peer = network.reference_peer
    for block in blocks:
        peer.deliver_block(CHANNEL, strip(block))
    # Clients only start inside run(), which is never called: the event
    # queue drains once every delivered block has been validated.
    network.env.run()
    return peer.channels[CHANNEL].ledger


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("seed", SEEDS)
def test_all_variants_commit_identical_ledgers(seed, system):
    blocks, source_hash, source_outcomes = capture(seed, system)
    for scheduler, workers, depth in VARIANTS:
        config = replace(
            base_config(seed, system),
            validation_scheduler=scheduler,
            validation_workers=workers,
            pipeline_depth=depth,
        )
        ledger = replay(config, blocks)
        label = f"{system}/seed={seed}/{scheduler}/w={workers}/d={depth}"
        assert ledger.height == len(blocks), label
        assert fingerprint(ledger) == source_hash, label
        assert outcome_table(ledger) == source_outcomes, label


@pytest.mark.parametrize("system", SYSTEMS)
def test_serial_replay_reproduces_live_run_exactly(system):
    # Harness sanity: the replay of the *capture* config itself must be a
    # fixed point — same blocks in, same export out.
    seed = SEEDS[0]
    blocks, source_hash, source_outcomes = capture(seed, system)
    ledger = replay(base_config(seed, system), blocks)
    assert fingerprint(ledger) == source_hash
    assert outcome_table(ledger) == source_outcomes


@pytest.mark.parametrize("system", SYSTEMS)
def test_pipeline_replay_records_validation_stats(system):
    seed = SEEDS[0]
    blocks, _, _ = capture(seed, system)
    config = replace(
        base_config(seed, system),
        validation_scheduler="dependency",
        validation_workers=4,
        pipeline_depth=2,
    )
    network = FabricNetwork(config, make_workload(seed))
    peer = network.reference_peer
    for block in blocks:
        peer.deliver_block(CHANNEL, strip(block))
    network.env.run()
    stats = network.metrics.validation
    assert stats is not None
    assert stats.workers == 4
    assert stats.scheduler == "dependency"
    assert stats.pipeline_depth == 2
    assert stats.blocks == len(blocks)
    assert stats.txs == sum(len(block) for block in blocks)
    # Dependency waves must compress the critical path below the strict
    # serial chain length (one wave per transaction).
    assert 0 < stats.avg_critical_path() <= stats.txs / stats.blocks
    # Each transaction hits the pool twice under the dependency
    # scheduler: once for signature verification, once for its MVCC
    # check inside a wave.
    assert stats.verify_tasks == 2 * stats.txs
