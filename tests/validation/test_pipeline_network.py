"""End-to-end runs with the modelled validation pipeline switched on."""

from __future__ import annotations

from copy import deepcopy
from dataclasses import replace

import pytest

from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.fabric.network import FabricNetwork
from repro.faults import CrashWindow, FaultSchedule
from repro.trace.tracer import Tracer
from repro.workloads.registry import WorkloadRef

CHANNEL = "ch0"


def pipeline_config(**overrides) -> FabricConfig:
    config = FabricConfig(
        batch=BatchCutConfig(max_transactions=32),
        clients_per_channel=2,
        client_rate=120.0,
        seed=7,
        validation_workers=4,
        validation_scheduler="dependency",
        pipeline_depth=2,
    )
    return replace(config, **overrides)


def workload(seed: int = 7):
    return WorkloadRef(
        "smallbank",
        {"num_users": 300, "prob_write": 0.95, "s_value": 1.0},
        seed=seed,
    ).build()


@pytest.mark.parametrize("system", ["vanilla", "fabric++"])
def test_pipeline_network_commits_and_reports_stats(system):
    config = pipeline_config()
    config = (
        config.with_fabric_plus_plus()
        if system == "fabric++"
        else config.with_vanilla()
    )
    network = FabricNetwork(config, workload())
    metrics = network.run(duration=1.0, drain=2.0)
    assert metrics.successful > 0
    stats = metrics.validation
    assert stats is not None
    assert stats.blocks > 0
    assert stats.parallelism_factor() >= 1.0
    assert stats.avg_queue_delay() >= 0.0
    summary = metrics.summary()
    assert summary["validation"]["scheduler"] == "dependency"
    # Every peer that stayed up converges on the reference chain.
    reference = network.reference_peer.channels[CHANNEL]
    for peer in network.peers:
        pcs = peer.channels[CHANNEL]
        assert pcs.ledger.tip_block_id == reference.ledger.tip_block_id
        assert dict(pcs.state.items()) == dict(reference.state.items())


def test_default_config_reports_no_validation_stats():
    config = pipeline_config(
        validation_workers=1, validation_scheduler="serial", pipeline_depth=1
    )
    metrics = FabricNetwork(config, workload()).run(duration=0.5, drain=1.0)
    assert metrics.validation is None
    assert "validation" not in metrics.summary()


def test_pipeline_depth_overlaps_verify_with_commit():
    # With depth=2 the tracer must show block N+1's signature
    # verification starting before block N's validate/commit span ends —
    # the cross-block overlap the pipeline exists to model. A live run
    # rarely backlogs (blocks arrive slower than they commit), so the
    # stream is captured once and then delivered all at simulated t=0.
    base = pipeline_config(
        validation_workers=1, validation_scheduler="serial", pipeline_depth=1
    ).with_vanilla()
    source = FabricNetwork(base, workload())
    source.run(duration=0.8, drain=2.0)
    blocks = [
        deepcopy(block)
        for block in source.reference_peer.channels[CHANNEL].ledger
    ]
    assert len(blocks) >= 4

    tracer = Tracer()
    config = pipeline_config(pipeline_depth=2).with_vanilla()
    network = FabricNetwork(config, workload(), tracer=tracer)
    peer = network.reference_peer
    for block in blocks:
        block.validity.clear()
        for tx in block.transactions:
            tx.failure_reason = None
        peer.deliver_block(CHANNEL, block)
    network.env.run()
    verifies = {}
    validates = {}
    reference = network.reference_peer.name
    for span in tracer.spans():
        if not span.track.startswith(reference):
            continue
        if span.name == "block.verify":
            verifies[span.args["block_id"]] = span
        elif span.name == "block.validate":
            validates[span.args["block_id"]] = span
    assert len(validates) >= 3
    overlaps = [
        block_id
        for block_id, verify in verifies.items()
        if block_id - 1 in validates
        and verify.start < validates[block_id - 1].end
    ]
    assert overlaps, "no cross-block verify/commit overlap observed"


def test_pipeline_survives_crash_and_recovery():
    faults = FaultSchedule(
        crashes=(CrashWindow(peer="peer0.OrgB", at=0.3, duration=0.4),),
        endorsement_timeout=0.05,
    )
    config = pipeline_config(
        faults=faults, endorsement_policy="outof:1"
    ).with_vanilla()
    network = FabricNetwork(config, workload())
    metrics = network.run(duration=1.2, drain=2.5)
    assert metrics.successful > 0
    reference = network.reference_peer.channels[CHANNEL]
    for peer in network.peers:
        pcs = peer.channels[CHANNEL]
        assert pcs.ledger.tip_block_id == reference.ledger.tip_block_id
        assert dict(pcs.state.items()) == dict(reference.state.items())
