"""Reorder-buffer regression (PR-8 bugfix satellite).

The serial fetch loop buffers out-of-order block deliveries until the
next expected id arrives. Re-gossiped *duplicates* of a buffered id used
to overwrite the buffered copy — letting the last delivery win, so a
late (possibly divergent) duplicate could displace the block the
validator was about to commit. First delivery must win: a duplicate of
an already-buffered id is dropped on the floor.

The test delivers block 2 early, then a tampered duplicate of block 2,
then block 1 to release the buffer — and asserts the committed ledger is
bit-identical to the in-order baseline (the tampered copy never
committed). Both the legacy serial loop and the pipelined fetch stage
share the fix.
"""

from __future__ import annotations

from copy import deepcopy
from dataclasses import replace

import pytest

from repro.fabric.network import FabricNetwork

from tests.validation.test_cc_oracle import base_config, capture, make_workload
from tests.validation.test_oracle_replay import fingerprint, strip

CHANNEL = "ch0"


@pytest.mark.parametrize(
    "overrides",
    [{}, {"validation_workers": 2}],
    ids=("serial", "pipeline"),
)
def test_duplicate_delivery_of_buffered_block_is_dropped(overrides):
    blocks, source_hash, _ = capture("smallbank", 7, "vanilla")
    config = replace(base_config(7, "vanilla"), **overrides)
    network = FabricNetwork(config, make_workload("smallbank", 7))
    peer = network.reference_peer

    first, second, rest = blocks[0], blocks[1], blocks[2:]
    duplicate = strip(deepcopy(second))
    tampered = 0
    for tx in duplicate.transactions:
        for key in list(tx.rwset.writes):
            tx.rwset.writes[key] = "tampered-by-late-duplicate"
            tampered += 1
    assert tampered > 0, "block 2 carries no writes; the probe is inert"

    # Block 2 arrives early and waits in the reorder buffer; a divergent
    # re-gossiped duplicate of the same id lands right behind it.
    peer.deliver_block(CHANNEL, strip(second))
    peer.deliver_block(CHANNEL, duplicate)
    # Block 1 releases the buffer; the rest stream in order.
    peer.deliver_block(CHANNEL, strip(first))
    for block in rest:
        peer.deliver_block(CHANNEL, strip(block))
    network.env.run()

    ledger = peer.channels[CHANNEL].ledger
    assert ledger.height == len(blocks)
    assert fingerprint(ledger) == source_hash
    # The committed copy of block 2 is the first delivery, not the
    # tampered duplicate: none of its write values carry the marker.
    committed_second = next(
        block for block in ledger if block.block_id == second.block_id
    )
    assert all(
        value != "tampered-by-late-duplicate"
        for tx in committed_second.transactions
        for value in tx.rwset.writes.values()
    )
