"""Property test: dependency-wave validation ≡ strict serial validation.

The pipeline's dependency scheduler claims that processing a block's
transactions wave-by-wave (independent transactions concurrently, waves
in topological order) produces exactly the outcomes and final state of
the sequential validator — for both application styles: vanilla's
buffered ``pending_writes`` + batch commit and Fabric++'s inline
per-transaction applies. This Hypothesis test drives both procedures
over random blocks — stale and fresh point reads, range reads with
phantoms, and intra-block write-write chains — and requires bit-equal
results. The anti- and output-dependency edges of
:func:`build_validation_dependencies` are precisely what make this hold;
drop either and this test fails.
"""

from __future__ import annotations

from copy import deepcopy
from typing import Dict, List

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conflict_graph import (
    build_validation_dependencies,
    dependency_waves,
)
from repro.fabric.peer import Peer
from repro.fabric.rwset import RangeRead, ReadWriteSet
from repro.ledger.state_db import StateDatabase, Version

KEYS = [f"k{i}" for i in range(6)]
#: A version no committed write ever carries — models a stale read.
STALE = Version(0, 777)

key_strategy = st.sampled_from(KEYS)


def reads_current(
    state: StateDatabase, pending: Dict[str, Version], rwset: ReadWriteSet
) -> bool:
    """Mirror of ``Peer._reads_current`` against a bare state + overlay."""
    for key, read_version in rwset.reads.items():
        current = pending.get(key)
        if current is None:
            current = state.get_version(key)
        if current != read_version:
            return False
    for range_read in rwset.range_reads:
        if not Peer._range_read_current(state, pending, range_read):
            return False
    return True


def run_serial(
    state: StateDatabase, rwsets: List[ReadWriteSet], inline: bool
) -> List[bool]:
    """The sequential validator's MVCC/commit procedure."""
    block_id = state.last_block_id + 1
    pending: Dict[str, Version] = {}
    valid_writes = []
    outcomes = []
    for index, rwset in enumerate(rwsets):
        ok = reads_current(state, pending, rwset)
        outcomes.append(ok)
        if ok:
            version = Version(block_id, index)
            if inline:
                for key, value in rwset.writes.items():
                    state.apply_write(key, value, version)
            else:
                for key in rwset.writes:
                    pending[key] = version
                valid_writes.append((index, rwset.writes))
    if inline:
        state.advance_block(block_id)
    else:
        state.apply_block_writes(block_id, valid_writes)
    return outcomes


def run_waves(
    state: StateDatabase, rwsets: List[ReadWriteSet], inline: bool
) -> List[bool]:
    """The pipeline's wave procedure (commit order by dependency level)."""
    block_id = state.last_block_id + 1
    waves = dependency_waves(build_validation_dependencies(rwsets))
    pending: Dict[str, Version] = {}
    valid_writes = []
    outcomes: Dict[int, bool] = {}
    for wave in waves:
        for index in wave:
            rwset = rwsets[index]
            ok = reads_current(state, pending, rwset)
            outcomes[index] = ok
            if ok:
                version = Version(block_id, index)
                if inline:
                    for key, value in rwset.writes.items():
                        state.apply_write(key, value, version)
                else:
                    for key in rwset.writes:
                        pending[key] = version
                    valid_writes.append((index, rwset.writes))
    if inline:
        state.advance_block(block_id)
    else:
        valid_writes.sort(key=lambda entry: entry[0])
        state.apply_block_writes(block_id, valid_writes)
    return [outcomes[index] for index in range(len(rwsets))]


def draw_tx(data, state: StateDatabase) -> ReadWriteSet:
    rwset = ReadWriteSet()
    for key in data.draw(
        st.lists(key_strategy, unique=True, max_size=3), label="reads"
    ):
        stale = data.draw(st.booleans(), label=f"stale[{key}]")
        rwset.record_read(key, STALE if stale else state.get_version(key))
    for key in data.draw(
        st.lists(key_strategy, unique=True, max_size=3), label="writes"
    ):
        rwset.record_write(key, data.draw(st.integers(0, 99), label="value"))
    if data.draw(st.booleans(), label="has_range"):
        bounds = sorted(
            data.draw(
                st.lists(key_strategy, min_size=1, max_size=2, unique=True),
                label="bounds",
            )
        )
        start = bounds[0]
        end = bounds[1] if len(bounds) == 2 else None
        results = tuple(
            (key, entry.version) for key, entry in state.range_scan(start, end)
        )
        if results and data.draw(st.booleans(), label="phantomise"):
            # Pretend the scan ran before its first key existed: the
            # current state then shows a phantom.
            results = results[1:]
        rwset.record_range_read(RangeRead(start, end, results))
    return rwset


@settings(max_examples=200, deadline=None)
@given(data=st.data())
def test_wave_schedule_matches_serial_validation(data):
    inline = data.draw(st.booleans(), label="inline (Fabric++)")
    base = StateDatabase()
    base.populate({key: index for index, key in enumerate(KEYS)})
    pre_writes = data.draw(
        st.dictionaries(key_strategy, st.integers(0, 9), max_size=4),
        label="pre-block writes",
    )
    if pre_writes:
        base.apply_block_writes(1, [(0, pre_writes)])

    count = data.draw(st.integers(1, 8), label="block size")
    rwsets = [draw_tx(data, base) for _ in range(count)]

    serial_state = deepcopy(base)
    wave_state = deepcopy(base)
    serial_outcomes = run_serial(serial_state, rwsets, inline)
    wave_outcomes = run_waves(wave_state, rwsets, inline)

    assert wave_outcomes == serial_outcomes
    assert dict(wave_state.items()) == dict(serial_state.items())
    assert wave_state.last_block_id == serial_state.last_block_id
