"""Validator observability parity (PR-8 bugfix satellites).

Two defects this file pins against regression:

1. The serial validator accumulated its per-block ``committed`` counter
   inside the tracer guard, so the ``block.validate`` span under-counted
   whenever the guard and the counter drifted. The counter is now
   unconditional: for every strategy, the sum of the reference peer's
   ``block.validate`` span ``committed`` args equals the metrics layer's
   committed-transaction count for the same run.
2. The serial validator charged the MVCC check to the ``logic`` resource
   (chaincode execution), polluting the paper's Figure-1 cost taxonomy.
   It now charges ``mvcc``, like every other strategy. A replay run
   executes no chaincode at all, so its breakdown must show exactly zero
   ``logic`` seconds and exactly one ``mvcc_check`` per transaction.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench.harness import run_experiment_with_network
from repro.fabric.network import FabricNetwork
from repro.trace import Tracer

from tests.integration.test_fault_determinism import golden_spec
from tests.validation.test_cc_oracle import base_config, capture, make_workload
from tests.validation.test_oracle_replay import strip

CHANNEL = "ch0"


def reference_block_spans(tracer: Tracer, network: FabricNetwork):
    prefix = f"{network.reference_peer.name}/"
    return [
        span
        for span in tracer.spans()
        if span.name == "block.validate" and span.track.startswith(prefix)
    ]


@pytest.mark.parametrize("system", ("vanilla", "fabric++"))
@pytest.mark.parametrize(
    "overrides",
    [
        {},                              # legacy serial loop
        {"validation_workers": 2},       # pipelined serial scheduler
        {"cc_strategy": "dependency"},
        {"cc_strategy": "lockless"},
        {"cc_strategy": "depaware"},
    ],
    ids=("serial", "pipeline", "dependency", "lockless", "depaware"),
)
def test_block_span_committed_matches_metrics(system, overrides):
    spec = golden_spec(system)
    spec = replace(spec, config=replace(spec.config, **overrides))
    tracer = Tracer()
    result, network = run_experiment_with_network(spec, tracer=tracer)
    spans = reference_block_spans(tracer, network)
    assert spans, "run recorded no block.validate spans"
    span_committed = sum(span.args["committed"] for span in spans)
    assert span_committed == result.metrics.successful
    expected = spec.config.resolved_cc_strategy
    if overrides.get("validation_workers"):
        expected = "serial"
    assert {span.args["strategy"] for span in spans} == {expected}


@pytest.mark.parametrize("system", ("vanilla", "fabric++"))
def test_serial_replay_charges_mvcc_not_logic(system):
    """A replay runs no chaincode, so every ``logic`` second charged by
    the serial validator is taxonomy pollution — and before the fix, the
    MVCC check landed there."""
    blocks, _, _ = capture("smallbank", 7, system)
    tracer = Tracer()
    network = FabricNetwork(
        base_config(7, system), make_workload("smallbank", 7), tracer=tracer
    )
    peer = network.reference_peer
    for block in blocks:
        peer.deliver_block(CHANNEL, strip(block))
    network.env.run()

    txs = sum(len(block.transactions) for block in blocks)
    assert peer.channels[CHANNEL].ledger.height == len(blocks)
    seconds = tracer.breakdown.seconds
    assert seconds.get("logic", 0.0) == 0.0
    costs = network.config.costs
    assert seconds["mvcc"] == pytest.approx(
        txs * costs.mvcc_check * peer.speed_factor
    )
    assert tracer.breakdown.operations["mvcc"] == txs
