"""Verify worker pool: deterministic dispatch, queueing, utilisation."""

from __future__ import annotations

import pytest

from repro.fabric.peer import VALIDATE_PRIORITY as PEER_VALIDATE_PRIORITY
from repro.sim.engine import Environment
from repro.sim.resources import Resource
from repro.validation.pipeline import VALIDATE_PRIORITY as PIPELINE_PRIORITY
from repro.validation.workers import VerifyWorkerPool


def test_pipeline_priority_mirrors_peer_constant():
    # pipeline.py keeps a local copy to avoid an import cycle; it must
    # stay in lockstep with the peer's validation band.
    assert PIPELINE_PRIORITY == PEER_VALIDATE_PRIORITY


def drive(env, pool, durations):
    """Submit all durations at t=0, run, return completion times."""
    finished = {}

    def submitter():
        events = [pool.submit(duration) for duration in durations]
        for index, event in enumerate(events):
            yield event
            finished[index] = env.now
        # Events fire in completion order only if awaited individually;
        # await them in submission order and read env.now at each.

    env.process(submitter())
    env.run()
    return finished


def test_two_workers_halve_makespan():
    env = Environment()
    cpu = Resource(env, 8)
    pool = VerifyWorkerPool(env, cpu, num_workers=2)
    drive(env, pool, [1.0, 1.0, 1.0, 1.0])
    # 4 seconds of work over 2 lanes: done at t=2, not t=4.
    assert env.now == pytest.approx(2.0)
    assert pool.tasks == 4


def test_single_worker_serialises():
    env = Environment()
    cpu = Resource(env, 8)
    pool = VerifyWorkerPool(env, cpu, num_workers=1)
    drive(env, pool, [1.0, 1.0, 1.0])
    assert env.now == pytest.approx(3.0)
    # Tasks 2 and 3 waited 1s and 2s for the lane.
    assert pool.queue_delay_total == pytest.approx(3.0)


def test_lanes_bounded_by_cpu_cores():
    # 4 lanes but a single core: lanes cannot create parallelism the
    # hardware does not have.
    env = Environment()
    cpu = Resource(env, 1)
    pool = VerifyWorkerPool(env, cpu, num_workers=4)
    drive(env, pool, [1.0, 1.0, 1.0, 1.0])
    assert env.now == pytest.approx(4.0)


def test_dispatch_is_deterministic_least_loaded_lowest_index():
    env = Environment()
    cpu = Resource(env, 8)
    pool = VerifyWorkerPool(env, cpu, num_workers=3)
    # All lanes idle: tasks go to lanes 0, 1, 2, then wrap to 0.
    pool.submit(1.0)
    assert pool._outstanding == [1, 0, 0]
    pool.submit(1.0)
    assert pool._outstanding == [1, 1, 0]
    pool.submit(1.0)
    pool.submit(1.0)
    assert pool._outstanding == [2, 1, 1]
    env.run()
    assert pool._outstanding == [0, 0, 0]


def test_lane_busy_times_feed_utilisation():
    env = Environment()
    cpu = Resource(env, 8)
    pool = VerifyWorkerPool(env, cpu, num_workers=2)
    drive(env, pool, [2.0, 1.0])
    busy = pool.lane_busy_times()
    assert busy[0] == pytest.approx(2.0)
    assert busy[1] == pytest.approx(1.0)


def test_resource_busy_time_integral():
    env = Environment()
    resource = Resource(env, 2)

    def worker(duration):
        yield from resource.use(duration)

    env.process(worker(1.0))
    env.process(worker(3.0))
    env.run()
    assert env.now == pytest.approx(3.0)
    # 1s with two slots busy + 2s with one: integral = 4 slot-seconds.
    assert resource.busy_time() == pytest.approx(4.0)


def test_resource_busy_time_counts_transfers():
    # Ownership transfer on release keeps the slot occupied; the
    # integral must not dip during the hand-off.
    env = Environment()
    resource = Resource(env, 1)

    def worker(duration):
        yield from resource.use(duration)

    env.process(worker(1.0))
    env.process(worker(1.0))
    env.run()
    assert env.now == pytest.approx(2.0)
    assert resource.busy_time() == pytest.approx(2.0)
