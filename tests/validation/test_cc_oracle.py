"""CC-zoo oracle: every registered strategy commits a serializable ledger.

The acceptance contract of the strategy registry
(:mod:`repro.validation.registry`):

- ``serial``, ``dependency`` and ``depaware`` are **outcome-equivalent**:
  replaying the same ordered block stream yields a bit-identical ledger
  export and identical per-transaction outcomes across seeds × systems ×
  worker counts — only simulated timing may differ.
- ``lockless`` is outcome-equivalent on any stream free of intra-block
  blind writes (a write to a key the transaction did not read), and on
  streams *with* blind writes it diverges in exactly one pinned way:
  write-write races resolve first-committer-wins (``abort_occ_ww``)
  instead of Fabric's native last-writer-wins. An independent
  pure-python OCC replay — sharing no code with the validator — predicts
  every decision and the final state database.

Captures come from two workloads: smallbank (every write key is also
read, so lockless must be bit-identical) and the custom hot-account
workload (blind hot writes, so the OCC divergence is actually
exercised).
"""

from __future__ import annotations

from copy import deepcopy
from dataclasses import replace
from functools import lru_cache
from typing import Dict, Optional

import pytest

from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.fabric.network import FabricNetwork
from repro.ledger.state_db import Version
from repro.testing import rwset
from repro.validation.lockless import LocklessValidator
from repro.workloads.registry import WorkloadRef

from tests.validation.test_oracle_replay import (
    fingerprint,
    outcome_table,
    strip,
)

CHANNEL = "ch0"
SEEDS = (7, 11)
SYSTEMS = ("vanilla", "fabric++")
#: (cc_strategy, validation_workers) replay matrix for the
#: outcome-equivalent strategies.
EQUIVALENT_VARIANTS = (
    ("serial", 1),
    ("dependency", 2),
    ("depaware", 1),
    ("depaware", 4),
)

#: Custom-workload parameters with *blind* hot writes: write targets are
#: drawn independently of read targets, so two transactions in one block
#: regularly write the same hot key without reading it — the write-write
#: race lockless resolves differently from Fabric.
HOT_WRITE_PARAMS = {
    "num_accounts": 500,
    "reads_writes": 4,
    "prob_hot_read": 0.1,
    "prob_hot_write": 0.5,
    "hot_set_fraction": 0.02,
}
SMALLBANK_PARAMS = {"num_users": 200, "prob_write": 0.95, "s_value": 1.0}


def make_workload(kind: str, seed: int):
    if kind == "smallbank":
        return WorkloadRef("smallbank", SMALLBANK_PARAMS, seed=seed).build()
    return WorkloadRef("custom", HOT_WRITE_PARAMS, seed=seed).build()


def base_config(seed: int, system: str) -> FabricConfig:
    config = FabricConfig(
        batch=BatchCutConfig(max_transactions=32),
        clients_per_channel=2,
        client_rate=150.0,
        seed=seed,
    )
    return (
        config.with_fabric_plus_plus()
        if system == "fabric++"
        else config.with_vanilla()
    )


@lru_cache(maxsize=None)
def capture(kind: str, seed: int, system: str):
    """Run the default serial configuration live and keep its blocks."""
    config = base_config(seed, system)
    network = FabricNetwork(config, make_workload(kind, seed))
    network.run(duration=0.8, drain=2.0)
    ledger = network.reference_peer.channels[CHANNEL].ledger
    blocks = [deepcopy(block) for block in ledger]
    assert len(blocks) >= 3, "capture produced too few blocks to be a test"
    assert any(
        not valid for block in blocks for valid in block.validity.values()
    ), "capture has no aborts; the oracle would not exercise conflicts"
    return blocks, fingerprint(ledger), outcome_table(ledger)


def replay_network(config: FabricConfig, kind: str, blocks):
    """Fresh network with the captured stream delivered, clients idle."""
    network = FabricNetwork(config, make_workload(kind, config.seed))
    peer = network.reference_peer
    for block in blocks:
        peer.deliver_block(CHANNEL, strip(block))
    network.env.run()
    return network


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("kind", ("smallbank", "custom"))
def test_equivalent_strategies_commit_identical_ledgers(kind, seed, system):
    blocks, source_hash, source_outcomes = capture(kind, seed, system)
    for strategy, workers in EQUIVALENT_VARIANTS:
        config = replace(
            base_config(seed, system),
            cc_strategy=strategy,
            validation_workers=workers,
        )
        network = replay_network(config, kind, blocks)
        ledger = network.reference_peer.channels[CHANNEL].ledger
        label = f"{kind}/{system}/seed={seed}/{strategy}/w={workers}"
        assert ledger.height == len(blocks), label
        assert fingerprint(ledger) == source_hash, label
        assert outcome_table(ledger) == source_outcomes, label


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("seed", SEEDS)
def test_lockless_identical_without_blind_writes(seed, system):
    """Smallbank never writes a key it did not read, so lockless's
    write-write rule can never fire (the read check catches every race
    first) and the ledger must be bit-identical to serial."""
    blocks, source_hash, source_outcomes = capture("smallbank", seed, system)
    for block in blocks:
        for tx in block.transactions:
            assert set(tx.rwset.writes) <= set(tx.rwset.read_keys), (
                "smallbank capture contains a blind write; the "
                "bit-identity precondition does not hold"
            )
    config = replace(base_config(seed, system), cc_strategy="lockless")
    network = replay_network(config, "smallbank", blocks)
    ledger = network.reference_peer.channels[CHANNEL].ledger
    assert fingerprint(ledger) == source_hash
    assert outcome_table(ledger) == source_outcomes


def occ_reference(blocks, initial_versions, baseline_outcomes):
    """Independent first-committer-wins OCC replay.

    Pure dictionary bookkeeping over the captured rwsets — no validator
    code. ``baseline_outcomes`` supplies the (CC-independent)
    endorsement-policy verdicts. Returns the per-block decision tables
    and the final (version, value) state the winners produce.
    """
    versions: Dict[str, Optional[Version]] = dict(initial_versions)
    values: Dict[str, object] = {}
    tables = []
    for block, (_bid, _validity, baseline_reasons) in zip(
        blocks, baseline_outcomes
    ):
        policy_bad = {
            tx_id for tx_id, reason in baseline_reasons
            if reason == "abort_policy"
        }
        overlay: Dict[str, Version] = {}
        overlay_values: Dict[str, object] = {}
        decisions = []
        for index, tx in enumerate(block.transactions):
            if tx.tx_id in policy_bad:
                decisions.append((tx.tx_id, "abort_policy"))
                continue
            reads_ok = all(
                overlay.get(key, versions.get(key)) == version
                for key, version in tx.rwset.reads.items()
            )
            for range_read in tx.rwset.range_reads:
                effective = {
                    key: version
                    for key, version in versions.items()
                    if version is not None
                    and key >= range_read.start_key
                    and (
                        range_read.end_key is None
                        or key < range_read.end_key
                    )
                }
                for key, version in overlay.items():
                    if key >= range_read.start_key and (
                        range_read.end_key is None
                        or key < range_read.end_key
                    ):
                        effective[key] = version
                if effective != dict(range_read.results):
                    reads_ok = False
            if not reads_ok:
                decisions.append((tx.tx_id, "abort_mvcc"))
            elif any(key in overlay for key in tx.rwset.writes):
                decisions.append((tx.tx_id, "abort_occ_ww"))
            else:
                decisions.append((tx.tx_id, None))
                version = Version(block.block_id, index)
                for key, value in tx.rwset.writes.items():
                    overlay[key] = version
                    overlay_values[key] = value
        versions.update(overlay)
        values.update(overlay_values)
        tables.append(decisions)
    return tables, versions, values


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("seed", SEEDS)
def test_lockless_matches_independent_occ_reference(seed, system):
    blocks, _, source_outcomes = capture("custom", seed, system)
    config = replace(base_config(seed, system), cc_strategy="lockless")
    network = FabricNetwork(config, make_workload("custom", config.seed))
    peer = network.reference_peer
    pcs = peer.channels[CHANNEL]
    initial_versions = {
        key: entry.version for key, entry in pcs.state.items()
    }
    reference, final_versions, final_values = occ_reference(
        blocks, initial_versions, source_outcomes
    )
    for block in blocks:
        peer.deliver_block(CHANNEL, strip(block))
    network.env.run()
    ledger = pcs.ledger
    assert ledger.height == len(blocks)

    actual = [
        [
            (tx.tx_id, tx.failure_reason)
            for tx in block.transactions
        ]
        for block in ledger
    ]
    assert actual == reference
    for block, decisions in zip(ledger, reference):
        assert block.validity == {
            tx_id: reason is None for tx_id, reason in decisions
        }
    # The capture must actually exercise the divergence it pins.
    ww_aborts = sum(
        1
        for decisions in reference
        for _tx_id, reason in decisions
        if reason == "abort_occ_ww"
    )
    assert ww_aborts > 0, "capture produced no write-write races"
    # The committed state is exactly the winners' writes, applied in
    # block/index order over the initial state.
    for key, version in final_versions.items():
        assert pcs.state.get_version(key) == version, key
    for key, value in final_values.items():
        assert pcs.state.get_value(key) == value, key


def test_lockless_decision_rules_first_committer_wins():
    """Unit pin of the OCC decision pass: classification and rule order."""
    network = FabricNetwork(
        base_config(3, "vanilla"), make_workload("smallbank", 3)
    )
    peer = network.reference_peer
    peer._endorsements_valid = lambda channel, tx: tx.tx_id != "bad"
    validator = LocklessValidator(peer, CHANNEL)

    class Tx:
        def __init__(self, tx_id, rws):
            self.tx_id = tx_id
            self.rwset = rws

    class SyntheticBlock:
        block_id = 1

        def __init__(self, txs):
            self.transactions = txs

    block = SyntheticBlock(
        [
            # Fresh keys: reads of absent keys (version None) are valid.
            Tx("t0", rwset(reads=[("x", None)], writes=["k"])),
            # Blind write racing t0's write: first committer wins.
            Tx("t1", rwset(writes=["k"])),
            # Reads t0's winner key at the snapshot version: stale.
            Tx("t2", rwset(reads=[("k", None)])),
            # Stale read AND write-write race: the read check runs
            # first, mirroring the serial validator's rule order.
            Tx("t3", rwset(reads=[("k", None)], writes=["k"])),
            # Untouched key: commits alongside the winners.
            Tx("t4", rwset(writes=["m"])),
            # Policy failures outrank every CC rule.
            Tx("bad", rwset(writes=["m"])),
        ]
    )
    outcomes = [o.value for o in validator._decide(block)]
    assert outcomes == [
        "committed",
        "abort_occ_ww",
        "abort_mvcc",
        "abort_mvcc",
        "committed",
        "abort_policy",
    ]
