"""Dependency-graph construction and wave scheduling for validation."""

from __future__ import annotations

from repro.core.conflict_graph import (
    build_validation_dependencies,
    dependency_waves,
)
from repro.fabric.rwset import RangeRead, ReadWriteSet
from repro.ledger.state_db import GENESIS_VERSION, Version


def rw(reads=(), writes=(), ranges=()):
    rwset = ReadWriteSet()
    for key in reads:
        rwset.record_read(key, GENESIS_VERSION)
    for key in writes:
        rwset.record_write(key, 1)
    for start, end, results in ranges:
        rwset.record_range_read(RangeRead(start, end, tuple(results)))
    return rwset


def test_disjoint_transactions_form_one_wave():
    graph = build_validation_dependencies(
        [rw(reads=["a"], writes=["b"]), rw(reads=["c"], writes=["d"])]
    )
    assert graph.num_edges() == 0
    assert dependency_waves(graph) == [[0, 1]]


def test_write_read_true_dependency():
    graph = build_validation_dependencies(
        [rw(writes=["k"]), rw(reads=["k"])]
    )
    assert graph.has_edge(0, 1)
    assert dependency_waves(graph) == [[0], [1]]


def test_read_write_anti_dependency():
    # T0 reads k, T1 writes k: T0's check must not see T1's write, so T1
    # waits — without this edge a same-wave T1 applying inline (Fabric++)
    # would corrupt T0's version check.
    graph = build_validation_dependencies(
        [rw(reads=["k"]), rw(writes=["k"])]
    )
    assert graph.has_edge(0, 1)


def test_write_write_output_dependency():
    graph = build_validation_dependencies(
        [rw(writes=["k"]), rw(writes=["k"])]
    )
    assert graph.has_edge(0, 1)


def test_write_into_scanned_range_is_phantom_hazard():
    # T1 scans [a, m) and observed nothing; T0 writes "c" — inside the
    # bounds but absent from the results, so key-intersection alone
    # would miss it.
    scanner = rw(ranges=[("a", "m", [])])
    writer = rw(writes=["c"])
    graph = build_validation_dependencies([writer, scanner])
    assert graph.has_edge(0, 1)
    # And the reverse order: the scan must not see the later write.
    graph = build_validation_dependencies([scanner, writer])
    assert graph.has_edge(0, 1)


def test_write_outside_range_is_independent():
    scanner = rw(ranges=[("a", "m", [("b", Version(1, 0))])])
    writer = rw(writes=["z"])
    graph = build_validation_dependencies([writer, scanner])
    assert graph.num_edges() == 0


def test_open_ended_range_covers_everything_above():
    scanner = rw(ranges=[("q", None, [])])
    graph = build_validation_dependencies([rw(writes=["z"]), scanner])
    assert graph.has_edge(0, 1)
    graph = build_validation_dependencies([rw(writes=["a"]), scanner])
    assert graph.num_edges() == 0


def test_edges_only_ascend_block_order():
    rwsets = [
        rw(reads=["a"], writes=["b"]),
        rw(reads=["b"], writes=["c"]),
        rw(reads=["c"], writes=["a"]),
    ]
    graph = build_validation_dependencies(rwsets)
    for source, target in graph.edges():
        assert source < target


def test_chain_produces_one_wave_per_link():
    rwsets = [rw(writes=["a"]), rw(reads=["a"], writes=["b"]), rw(reads=["b"])]
    waves = dependency_waves(build_validation_dependencies(rwsets))
    assert waves == [[0], [1], [2]]


def test_waves_mix_independent_and_dependent():
    rwsets = [
        rw(writes=["a"]),        # wave 0
        rw(writes=["x"]),        # wave 0 (independent)
        rw(reads=["a"]),         # wave 1 (after 0)
        rw(reads=["x", "a"]),    # wave 1 (after 0 and 1)
    ]
    waves = dependency_waves(build_validation_dependencies(rwsets))
    assert waves == [[0, 1], [2, 3]]
    # Critical path = 2 sequential steps for 4 transactions.
    assert len(waves) == 2


def test_waves_keep_ascending_order_within_wave():
    rwsets = [rw(writes=[f"k{i}"]) for i in range(5)]
    waves = dependency_waves(build_validation_dependencies(rwsets))
    assert waves == [[0, 1, 2, 3, 4]]


def test_empty_block():
    graph = build_validation_dependencies([])
    assert dependency_waves(graph) == []
