"""Configuration, CLI, cache-fingerprint, and serialisation plumbing for
the validation-pipeline knobs."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench.cache import spec_fingerprint
from repro.bench.results import metrics_from_dict, metrics_to_dict
from repro.bench.spec import ExperimentSpec
from repro.cli import SWEEPABLE, build_parser, config_from_args
from repro.core.batch_cutter import BatchCutConfig
from repro.errors import ConfigError
from repro.fabric.config import FabricConfig
from repro.fabric.metrics import PipelineMetrics, ValidationStats
from repro.workloads.registry import WorkloadRef


def parse(argv):
    return build_parser().parse_args(argv)


# -- config ----------------------------------------------------------------


@pytest.mark.parametrize(
    "field,value",
    [
        ("validation_workers", 0),
        ("validation_workers", -1),
        ("validation_scheduler", "parallel"),
        ("validation_scheduler", ""),
        ("pipeline_depth", 0),
    ],
)
def test_config_rejects_bad_validation_knobs(field, value):
    config = replace(FabricConfig(), **{field: value})
    with pytest.raises(ConfigError):
        config.validate()


def test_default_config_uses_legacy_validator():
    assert not FabricConfig().uses_validation_pipeline


@pytest.mark.parametrize(
    "overrides",
    [
        {"validation_workers": 2},
        {"validation_scheduler": "dependency"},
        {"pipeline_depth": 2},
    ],
)
def test_any_knob_opts_into_the_pipeline(overrides):
    config = replace(FabricConfig(), **overrides)
    config.validate()
    assert config.uses_validation_pipeline


# -- CLI -------------------------------------------------------------------


def test_cli_forwards_validation_flags():
    config = config_from_args(
        parse(
            [
                "run",
                "--validation-workers", "4",
                "--validation-scheduler", "dependency",
                "--pipeline-depth", "2",
            ]
        )
    )
    assert config.validation_workers == 4
    assert config.validation_scheduler == "dependency"
    assert config.pipeline_depth == 2
    assert config.uses_validation_pipeline


def test_cli_defaults_keep_legacy_validator():
    config = config_from_args(parse(["run"]))
    assert not config.uses_validation_pipeline


def test_cli_rejects_unknown_scheduler():
    with pytest.raises(SystemExit):
        parse(["run", "--validation-scheduler", "optimistic"])


def test_validation_knobs_are_sweepable():
    for key in ("validation-workers", "validation-scheduler", "pipeline-depth"):
        assert key in SWEEPABLE


# -- cache fingerprint -----------------------------------------------------


def small_spec(config):
    return ExperimentSpec(
        config=config, workload=WorkloadRef("blank"), duration=1.0
    )


def test_fingerprint_distinguishes_validation_configs():
    base = replace(
        FabricConfig(),
        clients_per_channel=1,
        client_rate=100.0,
        batch=BatchCutConfig(max_transactions=32),
    )
    variants = [
        base,
        replace(base, validation_workers=2),
        replace(base, validation_workers=4),
        replace(base, validation_scheduler="dependency"),
        replace(base, pipeline_depth=2),
    ]
    fingerprints = [spec_fingerprint(small_spec(c)) for c in variants]
    assert len(set(fingerprints)) == len(fingerprints)


# -- metrics serialisation -------------------------------------------------


def test_validation_stats_round_trip_through_result_rows():
    metrics = PipelineMetrics()
    metrics.validation = ValidationStats(
        workers=4,
        scheduler="dependency",
        pipeline_depth=2,
        blocks=8,
        txs=189,
        critical_path_total=14,
        verify_tasks=378,
        queue_delay_total=4.7656,
        lane_busy=[0.33, 0.32, 0.28, 0.28],
    )
    snapshot = metrics_to_dict(metrics)
    assert snapshot["validation"]["scheduler"] == "dependency"
    restored = metrics_from_dict(snapshot)
    assert restored.validation == metrics.validation


def test_legacy_metrics_snapshot_has_no_validation_key():
    snapshot = metrics_to_dict(PipelineMetrics())
    assert "validation" not in snapshot
    assert metrics_from_dict(snapshot).validation is None
