"""Channel-level fault isolation: routing and whole-channel partitions."""

from dataclasses import replace

from repro.channels import ShardedNetwork
from repro.channels.network import route_faults
from repro.channels.topology import ChannelTopology
from repro.chaos import INVARIANT_NAMES, check_invariants
from repro.core.batch_cutter import BatchCutConfig
from repro.fabric.config import FabricConfig
from repro.fabric.metrics import TxOutcome
from repro.faults import CrashWindow, FaultSchedule, PartitionWindow
from repro.workloads.smallbank import SmallbankParams, SmallbankWorkload


def fleet_config(channels=2, faults=None, **overrides):
    return replace(
        FabricConfig(),
        channels=channels,
        batch=BatchCutConfig(max_transactions=32),
        clients_per_channel=2,
        client_rate=80.0,
        seed=13,
        faults=faults or FaultSchedule(),
        **overrides,
    )


def workload():
    return SmallbankWorkload(
        SmallbankParams(num_users=300, prob_write=0.95, s_value=1.0), seed=13
    )


def test_crashes_route_to_their_channel_only():
    faults = FaultSchedule(
        crashes=(CrashWindow(peer="peer1.OrgB.ch1", at=0.2, duration=0.3),)
    )
    config = fleet_config(channels=3, faults=faults)
    routed = route_faults(config, ChannelTopology.for_config(config))
    assert len(routed) == 3
    assert routed[0].crashes == () and routed[2].crashes == ()
    assert len(routed[1].crashes) == 1
    assert routed[1].crashes[0].peer == "peer1.OrgB"  # base name


def test_channel_partition_becomes_stall_on_single_orderer():
    faults = FaultSchedule(
        partitions=(PartitionWindow(at=0.5, duration=0.4, channels=(1,)),)
    )
    config = fleet_config(channels=2, faults=faults)
    routed = route_faults(config, ChannelTopology.for_config(config))
    assert routed[0].partitions == () and routed[0].stalls == ()
    assert routed[1].partitions == ()
    assert len(routed[1].stalls) == 1
    assert routed[1].stalls[0].at == 0.5


def test_channel_partition_splits_clustered_orderer():
    faults = FaultSchedule(
        partitions=(PartitionWindow(at=0.5, duration=0.4, channels=(0,)),)
    )
    config = fleet_config(channels=2, faults=faults, orderer_nodes=3)
    routed = route_faults(config, ChannelTopology.for_config(config))
    assert len(routed[0].partitions) == 1
    assert routed[0].partitions[0].groups == ((0,), (1,), (2,))  # no quorum
    assert routed[1].partitions == ()


def test_isolated_channel_holds_invariants():
    faults = FaultSchedule(
        partitions=(PartitionWindow(at=0.4, duration=0.6, channels=(1,)),)
    )
    network = ShardedNetwork(fleet_config(channels=2, faults=faults), workload())
    network.run(duration=1.5, drain=4.0)

    invariants, details = check_invariants(network)
    assert set(invariants) == set(INVARIANT_NAMES)
    assert all(invariants.values()), details

    healthy, isolated = network.runtimes
    # Both channels commit; only the isolated one saw its ordering stall.
    assert healthy.metrics.blocks_committed > 0
    assert isolated.metrics.blocks_committed > 0
    assert healthy.metrics.fault_events == []
    stalled = [kind for _, kind, _ in isolated.metrics.fault_events]
    assert "stall_begin" in stalled and "stall_end" in stalled
    # Fleet-level events carry the channel-qualified subject.
    fleet_subjects = {
        subject for _, _, subject in network.metrics.fault_events
    }
    assert any(subject.endswith(".ch1") for subject in fleet_subjects)
    # Ordering pauses during the window: once the blocks already in
    # flight drain, nothing commits on the isolated channel until the
    # partition heals, while the healthy channel keeps committing.
    def commits_during_window(runtime):
        return [
            time
            for time, outcome in runtime.metrics.outcome_times
            if outcome is TxOutcome.COMMITTED and 0.6 <= time < 1.0
        ]

    assert commits_during_window(healthy)
    assert not commits_during_window(isolated)


def test_saga_legs_never_double_commit_under_isolation():
    faults = FaultSchedule(
        partitions=(PartitionWindow(at=0.4, duration=0.5, channels=(0,)),)
    )
    config = fleet_config(
        channels=2, faults=faults, cross_channel_fraction=0.3
    )
    network = ShardedNetwork(config, workload())
    network.run(duration=1.5, drain=4.0)

    invariants, details = check_invariants(network)
    assert all(invariants.values()), details  # exactly-once per channel
    saga = network.saga
    assert saga.unresolved_legs == 0
    assert saga.stats.started == saga.stats.finished
