"""The sharded fleet: construction, aggregation, sagas, determinism."""

from dataclasses import replace

import pytest

from repro.bench.results import metrics_to_dict
from repro.channels import ShardedNetwork, build_network
from repro.core.batch_cutter import BatchCutConfig
from repro.errors import ConfigError
from repro.fabric.config import FabricConfig, PopulationConfig
from repro.fabric.metrics import TxOutcome
from repro.fabric.network import FabricNetwork
from repro.workloads.smallbank import SmallbankParams, SmallbankWorkload


def fleet_config(channels=2, **overrides):
    return replace(
        FabricConfig(),
        channels=channels,
        batch=BatchCutConfig(max_transactions=32),
        clients_per_channel=2,
        client_rate=60.0,
        seed=5,
        **overrides,
    )


def workload(seed=5):
    return SmallbankWorkload(
        SmallbankParams(num_users=300, prob_write=0.95, s_value=1.0), seed=seed
    )


def test_build_network_dispatches_on_channels():
    single = build_network(fleet_config(channels=1), workload())
    sharded = build_network(fleet_config(channels=2), workload())
    assert isinstance(single, FabricNetwork)
    assert isinstance(sharded, ShardedNetwork)


def test_sharded_network_rejects_single_channel():
    with pytest.raises(ConfigError):
        ShardedNetwork(fleet_config(channels=1), workload())


def test_fleet_facade_and_namespaces():
    network = ShardedNetwork(fleet_config(channels=3), workload())
    assert network.channels == ["ch0", "ch1", "ch2"]
    assert sorted(network.orderers) == ["ch0", "ch1", "ch2"]
    assert len(network.peers) == 3 * 4  # 2 orgs x 2 peers per runtime
    # Client identities are fleet-unique via the global channel name.
    names = [
        client.identity.name
        for runtime in network.runtimes
        for client in runtime.clients
    ]
    assert len(set(names)) == len(names)
    # Runtimes draw decorrelated seeds.
    seeds = {runtime.config.seed for runtime in network.runtimes}
    assert len(seeds) == 3


def test_aggregate_sums_and_per_channel_rows():
    network = ShardedNetwork(fleet_config(channels=2), workload())
    metrics = network.run(duration=1.5)
    assert metrics.fired == sum(rt.metrics.fired for rt in network.runtimes)
    assert metrics.blocks_committed == sum(
        rt.metrics.blocks_committed for rt in network.runtimes
    )
    assert metrics.fired > 0
    fleet = metrics.channels
    assert fleet is not None and fleet.channels == 2
    assert [row["channel"] for row in fleet.per_channel] == ["ch0", "ch1"]
    for channel, row in zip(network.runtimes, fleet.per_channel):
        assert row["fired"] == channel.metrics.fired
        assert row["successful"] == channel.metrics.successful
    # Outcome times merged in time order.
    times = [time for time, _ in metrics.outcome_times]
    assert times == sorted(times)


def test_sharded_run_is_deterministic():
    first = ShardedNetwork(fleet_config(channels=2), workload()).run(duration=1.5)
    second = ShardedNetwork(fleet_config(channels=2), workload()).run(duration=1.5)
    assert metrics_to_dict(first) == metrics_to_dict(second)


def test_per_channel_cc_strategies():
    config = fleet_config(
        channels=2, channel_cc_strategies=("serial", "lockless")
    )
    network = ShardedNetwork(config, workload())
    metrics = network.run(duration=1.0)
    strategies = [row["cc_strategy"] for row in metrics.channels.per_channel]
    assert strategies == ["serial", "lockless"]


def test_sagas_account_for_every_leg():
    config = fleet_config(channels=3, cross_channel_fraction=0.4)
    network = ShardedNetwork(config, workload())
    metrics = network.run(duration=2.0)
    saga = network.saga
    assert saga is not None
    stats = saga.stats
    assert stats.started > 0
    assert stats.finished == stats.committed + stats.half_committed + stats.aborted
    assert stats.started == stats.finished
    assert saga.unresolved_legs == 0
    assert (
        metrics.outcomes.get(TxOutcome.SAGA_HALF_COMMITTED, 0)
        == stats.half_committed
    )
    assert metrics.channels.saga == stats


def test_population_rows_expose_affinity():
    config = fleet_config(
        channels=3,
        population=PopulationConfig(accounts=1_000_000, zipf_s=1.0),
    )
    network = ShardedNetwork(config, workload())
    metrics = network.run(duration=1.0)
    rows = metrics.channels.per_channel
    assert abs(sum(row["affinity"] for row in rows) - 1.0) < 1e-3
    assert sum(row["accounts"] for row in rows) == 1_000_000
    # The hot channel fires more than the cold one (load follows mass).
    by_weight = sorted(rows, key=lambda row: row["affinity"])
    assert by_weight[-1]["fired"] > by_weight[0]["fired"]
