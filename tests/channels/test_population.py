"""Unit tests for the lazily-materialised client population."""

import pickle

import pytest

from repro.channels.population import ClientPopulation, _apportion, _zipf_weights
from repro.errors import ConfigError
from repro.fabric.config import PopulationConfig
from repro.sim.distributions import Rng


def population(accounts=1_000_000, channels=4, zipf_s=1.0, seed=42):
    return ClientPopulation(
        PopulationConfig(accounts=accounts, zipf_s=zipf_s), channels, seed
    )


def test_weights_sum_to_one():
    for channels in (2, 3, 8):
        weights = _zipf_weights(channels, 1.2, seed=1)
        assert len(weights) == channels
        assert abs(sum(weights) - 1.0) < 1e-9


def test_zero_skew_is_uniform():
    weights = _zipf_weights(5, 0.0, seed=9)
    assert all(abs(weight - 0.2) < 1e-9 for weight in weights)


def test_hot_channel_depends_on_seed():
    hot = {
        max(range(4), key=_zipf_weights(4, 1.5, seed).__getitem__)
        for seed in range(20)
    }
    assert len(hot) > 1  # the seeded permutation moves the hot channel


def test_apportionment_is_exact():
    for accounts in (10, 999, 1_000_000):
        weights = _zipf_weights(3, 1.0, seed=3)
        counts = _apportion(accounts, weights)
        assert sum(counts) == accounts
        assert all(count >= 0 for count in counts)


def test_million_accounts_stay_lazy():
    pop = population(accounts=1_000_000, channels=4)
    assert pop.accounts == 1_000_000
    assert sum(pop.channel_accounts(c) for c in range(4)) == 1_000_000
    # Nothing of size O(accounts) exists: the state is a handful of ints.
    assert len(pop._starts) == 5


def test_account_home_matches_ranges():
    pop = population(accounts=10_000, channels=3)
    for channel in range(3):
        start, end = pop.channel_range(channel)
        assert pop.account_home(start) == channel
        assert pop.account_home(end - 1) == channel
    with pytest.raises(ConfigError):
        pop.account_home(10_000)
    with pytest.raises(ConfigError):
        pop.account_home(-1)


def test_sample_account_lands_in_channel():
    pop = population(accounts=5_000, channels=4, seed=7)
    rng = Rng(1)
    for channel in range(4):
        for _ in range(50):
            assert pop.account_home(pop.sample_account(channel, rng)) == channel


def test_client_rate_preserves_fleet_load():
    pop = population(channels=4, zipf_s=1.3, seed=5)
    rates = [pop.client_rate_for(channel, 100.0) for channel in range(4)]
    assert abs(sum(rates) - 4 * 100.0) < 1e-6
    assert max(rates) > min(rates)  # the skew concentrates load


def test_uniform_population_keeps_base_rate():
    pop = population(channels=3, zipf_s=0.0)
    for channel in range(3):
        assert abs(pop.client_rate_for(channel, 250.0) - 250.0) < 1e-9


def test_population_is_deterministic_and_picklable():
    a = population(seed=11)
    b = population(seed=11)
    assert a == b
    clone = pickle.loads(pickle.dumps(a))
    assert clone == a
    assert clone.channel_range(2) == a.channel_range(2)


def test_population_rejects_bad_shapes():
    with pytest.raises(ConfigError):
        ClientPopulation(PopulationConfig(accounts=100), 1, 0)
    with pytest.raises(ConfigError):
        ClientPopulation(PopulationConfig(), 4, 0)  # model off
