"""Unit tests for the static channel topology."""

import pickle

import pytest

from repro.channels.topology import ChannelTopology
from repro.errors import ConfigError
from repro.fabric.config import FabricConfig


def topology(channels=3, **overrides):
    from dataclasses import replace

    return ChannelTopology.for_config(
        replace(FabricConfig(), channels=channels, **overrides)
    )


def test_for_config_shapes():
    topo = topology(channels=3)
    assert topo.channel_names == ("ch0", "ch1", "ch2")
    assert topo.channels == 3
    assert topo.orgs == ("OrgA", "OrgB")
    assert topo.base_peer_names == (
        "peer0.OrgA", "peer1.OrgA", "peer0.OrgB", "peer1.OrgB",
    )
    assert topo.orderer_nodes == 1


def test_qualified_names_are_fleet_unique():
    topo = topology(channels=2)
    first = topo.qualified_peer_names(0)
    second = topo.qualified_peer_names(1)
    assert first == tuple(f"{name}.ch0" for name in topo.base_peer_names)
    assert second == tuple(f"{name}.ch1" for name in topo.base_peer_names)
    assert not set(first) & set(second)


def test_route_peer_round_trip():
    topo = topology(channels=4)
    for channel in range(4):
        for qualified in topo.qualified_peer_names(channel):
            index, base = topo.route_peer(qualified)
            assert index == channel
            assert base in topo.base_peer_names


@pytest.mark.parametrize(
    "bogus",
    ["peer9.OrgZ.ch0", "peer0.OrgA.ch7", "peer0.OrgA", "nonsense", ""],
)
def test_route_peer_rejects_unknown_names(bogus):
    topo = topology(channels=2)
    with pytest.raises(ConfigError) as excinfo:
        topo.route_peer(bogus)
    message = str(excinfo.value)
    assert repr(bogus) in message
    assert "peer0.OrgA.ch0" in message  # names the known namespace


def test_describe_one_row_per_channel():
    topo = topology(channels=2, orderer_nodes=3)
    rows = topo.describe()
    assert [row["channel"] for row in rows] == ["ch0", "ch1"]
    assert all(row["orderer_nodes"] == 3 for row in rows)
    assert rows[1]["peers"] == list(topo.qualified_peer_names(1))


def test_topology_pickles():
    topo = topology(channels=3)
    assert pickle.loads(pickle.dumps(topo)) == topo
