"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, config_from_args, main, workload_from_args
from repro.errors import ConfigError
from repro.workloads.blank import BlankWorkload
from repro.workloads.custom import CustomWorkload
from repro.workloads.smallbank import SmallbankWorkload


def parse(argv):
    return build_parser().parse_args(argv)


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        parse([])


def test_parser_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        parse(["run", "--workload", "tpcc"])


def test_workload_selection():
    assert isinstance(
        workload_from_args(parse(["run", "--workload", "smallbank"])),
        SmallbankWorkload,
    )
    assert isinstance(
        workload_from_args(parse(["run", "--workload", "custom"])),
        CustomWorkload,
    )
    assert isinstance(
        workload_from_args(parse(["run", "--workload", "blank"])),
        BlankWorkload,
    )


def test_smallbank_knobs_forwarded():
    args = parse(
        ["run", "--workload", "smallbank", "--users", "500",
         "--prob-write", "0.5", "--s-value", "1.2"]
    )
    workload = workload_from_args(args)
    assert workload.params.num_users == 500
    assert workload.params.prob_write == 0.5
    assert workload.params.s_value == 1.2


def test_custom_knobs_forwarded():
    args = parse(
        ["run", "--workload", "custom", "--accounts", "2000", "--rw", "4",
         "--hr", "0.2", "--hw", "0.05", "--hss", "0.02"]
    )
    workload = workload_from_args(args)
    assert workload.params.num_accounts == 2000
    assert workload.params.reads_writes == 4
    assert workload.params.prob_hot_read == 0.2


def test_system_flag_builds_fabricpp():
    vanilla = config_from_args(parse(["run", "--system", "fabric"]))
    fabricpp = config_from_args(parse(["run", "--system", "fabric++"]))
    assert not vanilla.is_fabric_plus_plus
    assert fabricpp.is_fabric_plus_plus


def test_network_knobs_forwarded():
    config = config_from_args(
        parse(["run", "--block-size", "256", "--clients", "2",
               "--channels", "3", "--client-rate", "100"])
    )
    assert config.batch.max_transactions == 256
    assert config.clients_per_channel == 2
    assert config.channels == 3
    assert config.num_channels == 1
    assert config.client_rate == 100


def test_run_command_end_to_end(capsys):
    exit_code = main(
        ["run", "--workload", "blank", "--clients", "1",
         "--client-rate", "50", "--duration", "2", "--block-size", "32"]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Fabric / blank" in output
    assert "successful_tps" in output


def test_compare_command_end_to_end(capsys):
    exit_code = main(
        ["compare", "--workload", "custom", "--accounts", "500",
         "--clients", "1", "--client-rate", "100", "--duration", "2",
         "--block-size", "64"]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Fabric vs Fabric++" in output
    assert "improvement" in output


def test_caliper_command_end_to_end(capsys):
    exit_code = main(
        ["caliper", "--workload", "blank", "--clients", "1",
         "--rate", "50", "--duration", "3"]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Caliper report" in output
    assert "avg_latency" in output


def test_verify_ledger_command(tmp_path, capsys):
    from dataclasses import replace

    from repro.core.batch_cutter import BatchCutConfig
    from repro.fabric.config import FabricConfig
    from repro.fabric.network import FabricNetwork
    from repro.ledger.export import save_ledger

    config = replace(
        FabricConfig(),
        clients_per_channel=1,
        client_rate=50.0,
        batch=BatchCutConfig(max_transactions=16),
    )
    network = FabricNetwork(config, BlankWorkload())
    network.run(duration=1.0, drain=4.0)
    path = tmp_path / "ledger.json"
    save_ledger(path, network.reference_peer.channels["ch0"].ledger)

    assert main(["verify-ledger", str(path)]) == 0
    assert "OK:" in capsys.readouterr().out


def test_verify_ledger_detects_tampering(tmp_path, capsys):
    import json
    from dataclasses import replace

    from repro.core.batch_cutter import BatchCutConfig
    from repro.fabric.config import FabricConfig
    from repro.fabric.network import FabricNetwork
    from repro.ledger.export import save_ledger

    config = replace(
        FabricConfig(),
        clients_per_channel=1,
        client_rate=50.0,
        batch=BatchCutConfig(max_transactions=16),
    )
    network = FabricNetwork(config, BlankWorkload())
    network.run(duration=1.0, drain=4.0)
    path = tmp_path / "ledger.json"
    save_ledger(path, network.reference_peer.channels["ch0"].ledger)
    payload = json.loads(path.read_text())
    payload["blocks"][0]["data_hash"] = "00" * 32
    path.write_text(json.dumps(payload))

    assert main(["verify-ledger", str(path)]) == 1
    assert "INVALID" in capsys.readouterr().out


def _sweep_argv(tmp_path, jobs):
    return [
        "sweep", "--workload", "custom", "--accounts", "400",
        "--clients", "1", "--client-rate", "100", "--duration", "1",
        "--block-size", "32", "--sweep", "block-size=16,32",
        "--jobs", str(jobs), "--cache-dir", str(tmp_path / "cache"),
    ]


def _table_lines(output):
    """The deterministic part of sweep output (drop the timing summary)."""
    return [line for line in output.splitlines() if "point(s):" not in line]


def test_sweep_command_parallel_matches_serial(tmp_path, capsys):
    assert main(_sweep_argv(tmp_path / "serial", jobs=1)) == 0
    serial = capsys.readouterr().out
    assert main(_sweep_argv(tmp_path / "parallel", jobs=2)) == 0
    parallel = capsys.readouterr().out
    assert _table_lines(parallel) == _table_lines(serial)
    assert "sweep / custom" in serial
    assert "improvement per grid point" in serial


def test_sweep_command_second_run_hits_cache(tmp_path, capsys):
    assert main(_sweep_argv(tmp_path, jobs=2)) == 0
    first = capsys.readouterr().out
    assert "4 point(s): 4 simulated, 0 from cache" in first
    assert main(_sweep_argv(tmp_path, jobs=2)) == 0
    second = capsys.readouterr().out
    assert "4 point(s): 0 simulated, 4 from cache" in second
    assert _table_lines(second) == _table_lines(first)


def test_sweep_command_no_cache(tmp_path, capsys):
    argv = _sweep_argv(tmp_path, jobs=1) + ["--no-cache"]
    assert main(argv) == 0
    assert main(argv) == 0
    output = capsys.readouterr().out
    assert "4 simulated, 0 from cache" in output
    assert not (tmp_path / "cache").exists()


def test_sweep_command_single_system(tmp_path, capsys):
    argv = _sweep_argv(tmp_path, jobs=1) + ["--systems", "fabric"]
    assert main(argv) == 0
    output = capsys.readouterr().out
    assert "improvement per grid point" not in output
    assert "2 point(s)" in output


def test_sweep_command_rejects_bad_axis(tmp_path, capsys):
    argv = _sweep_argv(tmp_path, jobs=1)
    argv[argv.index("block-size=16,32")] = "warp-speed=9"
    assert main(argv) == 2
    assert "bad --sweep" in capsys.readouterr().err


def test_sweep_command_rejects_bad_system(tmp_path, capsys):
    argv = _sweep_argv(tmp_path, jobs=1) + ["--systems", "fabric,quorum"]
    assert main(argv) == 2
    assert "unknown system" in capsys.readouterr().err


def test_drain_flag_forwarded():
    args = parse(["run", "--drain", "7.5"])
    assert args.drain == 7.5
    args = parse(["sweep", "--drain", "0"])
    assert args.drain == 0.0


def test_ycsb_workload_via_cli():
    args = parse(["run", "--workload", "ycsb", "--ycsb-preset", "b",
                  "--records", "500"])
    workload = workload_from_args(args)
    from repro.workloads.ycsb import YcsbWorkload

    assert isinstance(workload, YcsbWorkload)
    assert workload.params.num_records == 500
    assert workload.params.mix == {"read": 0.95, "update": 0.05}


# -- fault-injection flags ------------------------------------------------------


def test_default_run_has_zero_fault_schedule():
    config = config_from_args(parse(["run"]))
    assert config.faults.is_zero
    assert config.endorsement_policy is None


def test_crash_and_stall_flags_build_schedule():
    config = config_from_args(
        parse(
            ["run", "--crash", "peer1.OrgA@0.5+0.7", "--crash",
             "peer0.OrgB@1.0+0.2", "--stall", "1.5+0.3"]
        )
    )
    faults = config.faults
    assert len(faults.crashes) == 2
    assert faults.crashes[0].peer == "peer1.OrgA"
    assert faults.crashes[0].at == 0.5
    assert faults.crashes[0].duration == 0.7
    assert faults.stalls[0].at == 1.5
    # A deadline is defaulted in so the schedule validates.
    assert faults.endorsement_timeout > 0
    config.validate()


def test_drop_and_jitter_flags_forwarded():
    config = config_from_args(
        parse(["run", "--drop-rate", "0.05", "--jitter", "0.002",
               "--endorse-timeout", "0.1", "--endorse-retries", "5"])
    )
    assert config.faults.drop_probability == 0.05
    assert config.faults.jitter_mean == 0.002
    assert config.faults.endorsement_timeout == 0.1
    assert config.faults.max_endorsement_retries == 5


def test_bad_crash_spec_is_a_clean_error(capsys):
    exit_code = main(["run", "--crash", "nonsense"])
    assert exit_code == 2
    assert "bad --crash" in capsys.readouterr().err


def test_policy_and_resubmit_flags_forwarded():
    config = config_from_args(
        parse(["run", "--policy", "outof:1", "--max-resubmits", "4"])
    )
    assert config.endorsement_policy == "outof:1"
    assert config.max_resubmits == 4
    assert config_from_args(
        parse(["run", "--max-resubmits", "-1"])
    ).max_resubmits is None


def test_run_command_with_faults_end_to_end(tmp_path, capsys):
    ledger_path = tmp_path / "faulty-ledger.json"
    exit_code = main(
        ["run", "--workload", "smallbank", "--users", "300",
         "--clients", "2", "--client-rate", "100", "--block-size", "32",
         "--duration", "1.5", "--policy", "outof:1",
         "--crash", "peer1.OrgA@0.4+0.5",
         "--export-ledger", str(ledger_path)]
    )
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "fault events:" in output
    assert "crash" in output and "recover" in output
    assert ledger_path.exists()
    # The exported ledger of the faulty run verifies clean.
    assert main(["verify-ledger", str(ledger_path)]) == 0
    assert "OK:" in capsys.readouterr().out


def test_verify_ledger_reports_block_index(tmp_path, capsys):
    import json

    ledger_path = tmp_path / "ledger.json"
    exit_code = main(
        ["run", "--workload", "smallbank", "--users", "300",
         "--clients", "2", "--client-rate", "100", "--block-size", "32",
         "--duration", "1.5", "--export-ledger", str(ledger_path)]
    )
    assert exit_code == 0
    capsys.readouterr()
    payload = json.loads(ledger_path.read_text())
    assert len(payload["blocks"]) >= 2
    del payload["blocks"][1]["transactions"][0]["writes"]
    ledger_path.write_text(json.dumps(payload))
    assert main(["verify-ledger", str(ledger_path)]) == 1
    assert "block index 1" in capsys.readouterr().out


def test_verify_ledger_truncated_file(tmp_path, capsys):
    path = tmp_path / "truncated.json"
    path.write_text('{"schema_version": 1, "blocks": [{')
    assert main(["verify-ledger", str(path)]) == 1
    assert "INVALID" in capsys.readouterr().out


def test_sweep_drop_rate_axis(tmp_path, capsys):
    exit_code = main(
        ["sweep", "--workload", "smallbank", "--users", "200",
         "--clients", "1", "--client-rate", "60", "--block-size", "32",
         "--duration", "1.0", "--systems", "fabric",
         "--sweep", "drop-rate=0.0,0.05", "--no-cache"]
    )
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "drop-rate" in output


def test_run_command_with_trace(tmp_path, capsys):
    path = tmp_path / "trace.json"
    exit_code = main(
        ["run", "--workload", "smallbank", "--users", "200", "--clients", "1",
         "--client-rate", "80", "--duration", "1", "--drain", "1",
         "--block-size", "32", "--trace", str(path)]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "wrote Chrome trace" in output
    assert "cost attribution" in output
    assert "crypto + network share" in output
    from repro.trace import validate_chrome_trace_file

    counts = validate_chrome_trace_file(path)
    assert counts["X"] > 0 and counts["b"] == counts["e"]


def test_profile_command_end_to_end(tmp_path, capsys):
    path = tmp_path / "profile.json"
    exit_code = main(
        ["profile", "--workload", "smallbank", "--users", "200",
         "--clients", "1", "--client-rate", "80", "--duration", "1",
         "--drain", "1", "--block-size", "32", "--trace", str(path)]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "Fabric cost attribution" in output
    assert "Fabric++ cost attribution" in output
    assert "profile summary" in output
    assert "crypto_network_share" in output
    from repro.trace import validate_chrome_trace_file

    for suffix in ("fabric", "fabricpp"):
        assert validate_chrome_trace_file(f"{path}.{suffix}")["X"] > 0


def test_profile_command_without_trace_writes_no_files(tmp_path, capsys):
    exit_code = main(
        ["profile", "--workload", "blank", "--clients", "1",
         "--client-rate", "50", "--duration", "1", "--drain", "1",
         "--block-size", "32"]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "profile summary" in output
    assert "wrote" not in output


# -- faults files, replicated ordering, chaos -------------------------------


def _schedule_file(tmp_path, schedule):
    import json
    from dataclasses import asdict

    path = tmp_path / "faults.json"
    path.write_text(json.dumps(asdict(schedule)))
    return str(path)


def test_faults_file_round_trips(tmp_path):
    from repro.faults import CrashWindow, FaultSchedule, StallWindow

    schedule = FaultSchedule(
        crashes=(CrashWindow("peer1.OrgA", 0.5, 0.7),),
        stalls=(StallWindow(1.0, 0.2),),
        drop_probability=0.02,
        endorsement_timeout=0.1,
    )
    config = config_from_args(
        parse(["run", "--faults-file", _schedule_file(tmp_path, schedule)])
    )
    assert config.faults == schedule


def test_partial_faults_file_gets_default_deadline(tmp_path):
    import json

    path = tmp_path / "partial.json"
    path.write_text(
        json.dumps(
            {"crashes": [{"peer": "peer1.OrgA", "at": 0.5, "duration": 0.7}]}
        )
    )
    config = config_from_args(parse(["run", "--faults-file", str(path)]))
    # Same defaulting as the inline --crash flag: a deadline is filled in
    # so clients facing a dead endorser cannot hang.
    assert config.faults.endorsement_timeout > 0
    config.validate()


def test_faults_file_conflicts_with_inline_flags(capsys):
    exit_code = main(
        ["run", "--faults-file", "x.json", "--crash", "peer1.OrgA@0.5+0.7",
         "--duration", "1"]
    )
    assert exit_code == 2
    assert "--faults-file cannot be combined" in capsys.readouterr().err


@pytest.mark.parametrize(
    "content", ["{not json", '["list"]', '{"crashes": [{"bogus": 1}]}']
)
def test_bad_faults_file_is_a_clean_error(tmp_path, capsys, content):
    path = tmp_path / "bad.json"
    path.write_text(content)
    exit_code = main(["run", "--faults-file", str(path), "--duration", "1"])
    assert exit_code == 2
    assert str(path) in capsys.readouterr().err


def test_missing_faults_file_is_a_clean_error(tmp_path, capsys):
    path = str(tmp_path / "nope.json")
    exit_code = main(["run", "--faults-file", path, "--duration", "1"])
    assert exit_code == 2
    assert path in capsys.readouterr().err


def test_unknown_faults_file_key_is_named_in_the_error(tmp_path, capsys):
    path = tmp_path / "typo.json"
    path.write_text('{"drop_probabilty": 0.1}')
    exit_code = main(["run", "--faults-file", str(path), "--duration", "1"])
    err = capsys.readouterr().err
    assert exit_code == 2
    assert "drop_probabilty" in err
    assert str(path) in err


def test_faults_file_unknown_peer_fails_fast_with_name_and_path(tmp_path):
    """A typo'd peer in a --faults-file must surface at parse time,
    naming both the offending peer and the file it came from."""
    from repro.faults import CrashWindow, FaultSchedule

    schedule = FaultSchedule(
        crashes=(CrashWindow("peer9.OrgZ", 0.5, 0.7),),
        endorsement_timeout=0.1,
    )
    path = _schedule_file(tmp_path, schedule)
    with pytest.raises(ConfigError) as excinfo:
        config_from_args(parse(["run", "--faults-file", path]))
    message = str(excinfo.value)
    assert "peer9.OrgZ" in message
    assert path in message
    assert "known peers" in message


def test_faults_file_unknown_peer_exits_cleanly(tmp_path, capsys):
    from repro.faults import CrashWindow, FaultSchedule

    schedule = FaultSchedule(
        crashes=(CrashWindow("peer0.OrgA.ch9", 0.5, 0.7),),
        endorsement_timeout=0.1,
    )
    path = _schedule_file(tmp_path, schedule)
    exit_code = main(
        ["run", "--faults-file", path, "--channels", "2", "--duration", "1"]
    )
    assert exit_code == 2
    err = capsys.readouterr().err
    assert "peer0.OrgA.ch9" in err
    assert path in err


def test_faults_file_qualified_peer_accepted_in_sharded_config(tmp_path):
    from repro.faults import CrashWindow, FaultSchedule

    schedule = FaultSchedule(
        crashes=(CrashWindow("peer0.OrgA.ch1", 0.5, 0.7),),
        endorsement_timeout=0.1,
    )
    path = _schedule_file(tmp_path, schedule)
    config = config_from_args(
        parse(["run", "--faults-file", path, "--channels", "2"])
    )
    assert config.faults == schedule


def test_faults_file_round_trips_misbehaviors(tmp_path):
    from repro.faults import FaultSchedule, MisbehaviorSpec

    schedule = FaultSchedule(
        misbehaviors=(
            MisbehaviorSpec(kind="resubmit_storm", fraction=0.5, storm_cap=16),
        )
    )
    config = config_from_args(
        parse(["run", "--faults-file", _schedule_file(tmp_path, schedule)])
    )
    assert config.faults == schedule


def test_orderer_nodes_flag_forwarded():
    config = config_from_args(parse(["run", "--orderer-nodes", "3"]))
    assert config.orderer_nodes == 3
    assert config_from_args(parse(["run"])).orderer_nodes == 1


def test_orderer_nodes_is_sweepable():
    from repro.cli import SWEEPABLE

    assert "orderer-nodes" in SWEEPABLE


def test_run_command_with_replicated_orderer(capsys):
    exit_code = main(
        ["run", "--workload", "smallbank", "--users", "200", "--clients", "2",
         "--client-rate", "80", "--duration", "1", "--drain", "3",
         "--block-size", "32", "--orderer-nodes", "3"]
    )
    assert exit_code == 0
    output = capsys.readouterr().out
    assert "consensus" in output


def test_chaos_command_end_to_end(tmp_path, capsys):
    import json

    report = tmp_path / "chaos.json"
    exit_code = main(
        ["chaos", "--seeds", "2", "--duration", "1.2", "--drain", "4",
         "--report", str(report)]
    )
    output = capsys.readouterr().out
    assert exit_code == 0
    assert "PASS" in output
    assert "2/2 seeds passed" in output
    payload = json.loads(report.read_text())
    assert payload["passed"] == 2 and payload["failed"] == 0
    assert len(payload["runs"]) == 2
    for run in payload["runs"]:
        assert all(run["invariants"].values())
        assert run["liveness"] and run["converged"]
