"""Unit tests for the Raft-style consensus core (no Fabric pipeline).

These drive :class:`RaftGroup` directly over an :class:`OrdererCluster`:
elections, log replication, leader failover, and partition behaviour —
minority sides stall, healed partitions reconcile without forking.
"""

from dataclasses import replace

import pytest

from repro.consensus.cluster import OrdererCluster
from repro.consensus.raft import FOLLOWER, LEADER, RaftGroup
from repro.errors import SimulationError
from repro.fabric.config import ConsensusConfig, FabricConfig
from repro.sim.engine import Environment


def build_group(orderer_nodes=3, seed=7):
    config = replace(FabricConfig(), orderer_nodes=orderer_nodes, seed=seed)
    env = Environment()
    cluster = OrdererCluster(env, config)
    group = RaftGroup(
        cluster,
        "ch0",
        0,
        config,
        on_leader=lambda replica: None,
        on_commit=lambda replica: None,
    )
    group.start()
    return env, cluster, group


def committed_batches(replica):
    """The committed batch entries (no-ops skipped), as comparable data."""
    return [
        (entry.term, entry.batch)
        for entry in replica.log[: replica.commit_index]
        if not entry.noop
    ]


def test_cluster_requires_at_least_two_nodes():
    config = replace(FabricConfig(), orderer_nodes=1)
    with pytest.raises(SimulationError):
        OrdererCluster(Environment(), config)


@pytest.mark.parametrize("nodes,quorum", [(2, 2), (3, 2), (4, 3), (5, 3)])
def test_quorum_is_a_majority(nodes, quorum):
    _env, cluster, _group = build_group(orderer_nodes=nodes)
    assert cluster.quorum == quorum


def test_exactly_one_leader_emerges():
    env, cluster, group = build_group()
    env.run(until=1.0)
    leaders = [r for r in group.replicas if r.role == LEADER]
    assert len(leaders) == 1
    assert cluster.stats.leader_changes == 1
    # Everyone agrees on the winner's term.
    term = leaders[0].current_term
    assert all(r.current_term == term for r in group.replicas)


def test_election_timeline_is_deterministic():
    runs = []
    for _ in range(2):
        env, cluster, _group = build_group(seed=21)
        env.run(until=2.0)
        runs.append(list(cluster.leadership_log))
    assert runs[0] == runs[1] and runs[0]


def test_entries_replicate_to_every_node():
    env, _cluster, group = build_group()
    env.run(until=1.0)
    leader = group.leader()
    assert leader.propose(("t1", "t2"), ())
    assert leader.propose(("t3",), ())
    env.run(until=1.5)
    for replica in group.replicas:
        assert replica.commit_index == leader.last_log_index
        assert committed_batches(replica) == committed_batches(leader)
    assert committed_batches(leader) == [
        (leader.current_term, ("t1", "t2")),
        (leader.current_term, ("t3",)),
    ]


def test_followers_reject_proposals():
    env, _cluster, group = build_group()
    env.run(until=1.0)
    follower = next(r for r in group.replicas if r.role == FOLLOWER)
    assert not follower.propose(("t1",), ())


def test_leader_crash_elects_successor_and_preserves_log():
    env, cluster, group = build_group()
    env.run(until=1.0)
    old_leader = group.leader()
    old_leader.propose(("committed-before-crash",), ())
    env.run(until=1.2)
    old_term = old_leader.current_term

    cluster.crash(old_leader.node.index)
    env.run(until=2.0)
    new_leader = group.leader()
    assert new_leader is not None
    assert new_leader.node.index != old_leader.node.index
    assert new_leader.current_term > old_term
    # The committed entry survived the failover.
    assert (old_term, ("committed-before-crash",)) in committed_batches(
        new_leader
    )

    new_leader.propose(("after-failover",), ())
    cluster.recover(old_leader.node.index)
    env.run(until=3.0)
    # The recovered node converges on the successor's log.
    assert committed_batches(old_leader) == committed_batches(new_leader)
    assert old_leader.role == FOLLOWER


def test_minority_partition_stalls_then_heals_without_fork():
    env, cluster, group = build_group()
    env.run(until=1.0)
    stale = group.leader()
    stale.propose(("pre-partition",), ())
    env.run(until=1.2)

    others = [
        r.node.index for r in group.replicas if r is not stale
    ]
    cluster.set_partition(((stale.node.index,), tuple(others)))
    # The isolated leader can append locally but can never commit.
    stale.propose(("doomed",), ())
    before = stale.commit_index
    env.run(until=2.5)
    assert stale.commit_index == before

    # The majority side elected a fresh leader and keeps committing.
    majority = group.leader()
    assert majority.node.index in others
    assert majority.current_term > stale.current_term
    majority.propose(("majority-progress",), ())
    env.run(until=3.0)
    assert (
        majority.current_term,
        ("majority-progress",),
    ) in committed_batches(majority)

    cluster.heal_partition()
    env.run(until=4.0)
    # Reconciliation: the stale leader stepped down, its uncommitted
    # "doomed" entry was truncated away, and every log agrees.
    assert stale.role == FOLLOWER
    assert all(not entry.batch == ("doomed",) for entry in stale.log)
    for replica in group.replicas:
        assert committed_batches(replica) == committed_batches(majority)
    # Committed pre-partition work was never lost.
    assert any(
        entry == ("pre-partition",)
        for _term, entry in committed_batches(majority)
    )


def test_no_quorum_means_no_commits():
    env, cluster, group = build_group()
    env.run(until=1.0)
    leader = group.leader()
    for replica in group.replicas:
        if replica is not leader:
            cluster.crash(replica.node.index)
    before = leader.commit_index
    leader.propose(("stuck",), ())
    env.run(until=2.5)
    assert leader.commit_index == before


def test_messages_cost_network_and_cpu():
    env, cluster, _group = build_group()
    env.run(until=1.0)
    assert cluster.stats.messages_sent > 0
    # Heartbeats keep every node's CPU ticking.
    for node in cluster.nodes:
        assert node.cpu.busy_time() > 0.0


def test_custom_timeouts_flow_into_elections():
    config = replace(
        FabricConfig(),
        orderer_nodes=3,
        consensus=ConsensusConfig(
            election_timeout_min=0.5,
            election_timeout_max=0.9,
            heartbeat_interval=0.1,
        ),
    )
    env = Environment()
    cluster = OrdererCluster(env, config)
    group = RaftGroup(
        cluster, "ch0", 0, config,
        on_leader=lambda r: None, on_commit=lambda r: None,
    )
    group.start()
    env.run(until=0.45)
    assert group.leader() is None  # nobody may time out before 0.5s
    env.run(until=3.0)
    assert group.leader() is not None
