"""Replicated ordering through the full Fabric pipeline.

Covers the network-level wiring: healthy replicated runs, failover under
orderer crashes and partitions, determinism (repeat and across sweep
worker processes), cache fingerprints, metrics serialisation, and the
independence of the consensus RNG streams from workload/client streams.
"""

import json
from dataclasses import replace

import pytest

from repro.bench.cache import spec_fingerprint
from repro.bench.results import metrics_from_dict, metrics_to_dict
from repro.bench.spec import ExperimentSpec
from repro.bench.sweep import run_sweep
from repro.consensus.cluster import CONSENSUS_SEED_SALT
from repro.core.batch_cutter import BatchCutConfig
from repro.errors import ConfigError
from repro.fabric.config import ConsensusConfig, FabricConfig
from repro.fabric.metrics import ConsensusStats, PipelineMetrics
from repro.fabric.network import FabricNetwork
from repro.faults import (
    FAULT_SEED_SALT,
    FaultSchedule,
    OrdererCrashWindow,
    PartitionWindow,
)
from repro.sim.distributions import mix_seed
from repro.workloads.registry import WorkloadRef, make_workload


def replicated_config(**overrides):
    faults = overrides.pop("faults", FaultSchedule())
    return replace(
        FabricConfig(),
        batch=BatchCutConfig(max_transactions=32),
        clients_per_channel=2,
        client_rate=80.0,
        seed=overrides.pop("seed", 11),
        orderer_nodes=overrides.pop("orderer_nodes", 3),
        faults=faults,
        **overrides,
    )


def run_network(config, duration=1.5, drain=4.0):
    workload = make_workload(
        "smallbank", seed=config.seed, num_users=300, s_value=1.0
    )
    network = FabricNetwork(config, workload)
    metrics = network.run(duration, drain=drain)
    return network, metrics


FAILOVER_FAULTS = FaultSchedule(
    orderer_crashes=(OrdererCrashWindow(node=0, at=0.4, duration=0.6),),
    partitions=(
        PartitionWindow(at=1.2, duration=0.3, groups=((0,), (1, 2))),
    ),
    endorsement_timeout=0.05,
)


def test_healthy_replicated_run_commits_and_reports_consensus():
    network, metrics = run_network(replicated_config())
    assert metrics.successful > 0
    summary = metrics.summary()
    assert "consensus" in summary
    consensus = summary["consensus"]
    assert consensus["nodes"] == 3
    assert consensus["entries_committed"] >= consensus["entries_proposed"] > 0
    assert consensus["leader_changes"] >= 1
    # Nothing left inside the ordering service.
    for orderer in network.orderers.values():
        assert orderer.pending_count == 0
    assert network.reference_peer.channels["ch0"].ledger.verify_chain()


def test_single_orderer_has_no_consensus_machinery():
    config = replace(FabricConfig(), clients_per_channel=1, client_rate=50.0)
    workload = make_workload("smallbank", seed=3, num_users=200)
    network = FabricNetwork(config, workload)
    assert network.orderer_cluster is None
    metrics = network.run(1.0, drain=2.0)
    assert metrics.consensus is None
    assert "consensus" not in metrics.summary()
    with pytest.raises(ConfigError):
        network.crash_orderer(0)


def test_failover_run_loses_nothing_and_never_duplicates():
    config = replicated_config(
        faults=FAILOVER_FAULTS, endorsement_policy="outof:1"
    )
    network, metrics = run_network(config, duration=2.0, drain=5.0)
    assert metrics.consensus.leader_changes >= 2  # crash + partition
    assert metrics.fault_counters.get("orderer_crashes") == 1
    assert metrics.fault_counters.get("partitions") == 1

    ledger = network.reference_peer.channels["ch0"].ledger
    assert ledger.verify_chain()
    # Exactly-once: no tx id occupies two ledger slots.
    seen = set()
    for block in ledger:
        for tx in list(block.transactions) + list(block.early_aborted):
            assert tx.tx_id not in seen
            seen.add(tx.tx_id)
    # No committed-tx loss: every commit reported to a client is a valid
    # ledger transaction, and vice versa.
    valid = sum(
        1 for block in ledger for flag in block.validity.values() if flag
    )
    assert metrics.successful == valid > 0


def test_faulty_replicated_run_is_repeat_deterministic():
    config = replicated_config(
        faults=FAILOVER_FAULTS, endorsement_policy="outof:1"
    )
    snapshots = []
    for _ in range(2):
        _network, metrics = run_network(config, duration=2.0, drain=5.0)
        snapshots.append(
            json.dumps(metrics_to_dict(metrics), sort_keys=True)
        )
    assert snapshots[0] == snapshots[1]


def test_replicated_sweep_matches_across_worker_counts(tmp_path):
    spec = ExperimentSpec(
        config=replicated_config(
            faults=FAILOVER_FAULTS, endorsement_policy="outof:1"
        ),
        workload=WorkloadRef(
            "smallbank",
            {"num_users": 300, "prob_write": 0.95, "s_value": 1.0},
            seed=11,
        ),
        duration=1.5,
        drain=4.0,
        label="replicated",
    )
    specs = [spec, replace(spec, config=replace(spec.config, seed=12))]
    serial = run_sweep(specs, jobs=1, cache=None)
    parallel = run_sweep(specs, jobs=2, cache=None)
    for left, right in zip(serial.values(), parallel.values()):
        assert metrics_to_dict(left.metrics) == metrics_to_dict(right.metrics)


def test_consensus_seed_streams_disjoint_from_client_and_fault_streams():
    """Consensus randomness must never overlap the workload/client/fault
    streams, so enabling replication cannot perturb what clients fire."""
    seed = 42
    consensus_streams = {
        mix_seed(seed, CONSENSUS_SEED_SALT, channel, node)
        for channel in range(4)
        for node in range(5)
    }
    client_streams = {
        mix_seed(seed, channel, client)
        for channel in range(4)
        for client in range(8)
    }
    fault_stream = {(seed * 0x9E3779B1 + FAULT_SEED_SALT) & 0x7FFFFFFF}
    assert not consensus_streams & client_streams
    assert not consensus_streams & fault_stream
    assert len(consensus_streams) == 20


# -- config validation -----------------------------------------------------


def test_orderer_fault_windows_require_replication():
    for faults in (
        FaultSchedule(
            orderer_crashes=(OrdererCrashWindow(node=0, at=0.5, duration=0.5),),
            endorsement_timeout=0.05,
        ),
        FaultSchedule(
            partitions=(
                PartitionWindow(at=0.5, duration=0.5, groups=((0,), (1, 2))),
            ),
            endorsement_timeout=0.05,
        ),
    ):
        config = replace(FabricConfig(), faults=faults)
        with pytest.raises(ConfigError, match="orderer_nodes >= 2"):
            config.validate()


def test_orderer_fault_windows_must_name_cluster_nodes():
    config = replace(
        FabricConfig(),
        orderer_nodes=3,
        faults=FaultSchedule(
            orderer_crashes=(OrdererCrashWindow(node=5, at=0.5, duration=0.5),),
            endorsement_timeout=0.05,
        ),
    )
    with pytest.raises(ConfigError, match="node 5"):
        config.validate()


@pytest.mark.parametrize(
    "consensus",
    [
        ConsensusConfig(election_timeout_min=0.0),
        ConsensusConfig(election_timeout_min=0.3, election_timeout_max=0.2),
        ConsensusConfig(heartbeat_interval=0.0),
        ConsensusConfig(heartbeat_interval=0.2),  # >= election_timeout_min
        ConsensusConfig(message_delay=-1.0),
    ],
)
def test_bad_consensus_knobs_rejected(consensus):
    config = replace(FabricConfig(), orderer_nodes=3, consensus=consensus)
    with pytest.raises(ConfigError):
        config.validate()


# -- cache fingerprint -----------------------------------------------------


def small_spec(config):
    return ExperimentSpec(
        config=config, workload=WorkloadRef("blank"), duration=1.0
    )


def test_fingerprint_distinguishes_consensus_configs():
    base = replace(
        FabricConfig(),
        clients_per_channel=1,
        client_rate=100.0,
        batch=BatchCutConfig(max_transactions=32),
    )
    variants = [
        base,
        replace(base, orderer_nodes=3),
        replace(base, orderer_nodes=5),
        replace(
            base,
            orderer_nodes=3,
            consensus=ConsensusConfig(election_timeout_min=0.2),
        ),
        replace(
            base,
            orderer_nodes=3,
            consensus=ConsensusConfig(heartbeat_interval=0.02),
        ),
        replace(
            base,
            orderer_nodes=3,
            faults=FaultSchedule(
                orderer_crashes=(
                    OrdererCrashWindow(node=1, at=0.5, duration=0.5),
                ),
                endorsement_timeout=0.05,
            ),
        ),
    ]
    fingerprints = [spec_fingerprint(small_spec(c)) for c in variants]
    assert len(set(fingerprints)) == len(fingerprints)


# -- metrics serialisation -------------------------------------------------


def test_consensus_stats_round_trip():
    metrics = PipelineMetrics()
    metrics.consensus = ConsensusStats(
        nodes=3,
        elections_started=2,
        leader_changes=2,
        max_term=3,
        messages_sent=412,
        messages_dropped=9,
        entries_proposed=17,
        entries_committed=17,
        txs_reproposed=12,
        duplicate_txs_suppressed=1,
    )
    snapshot = metrics_to_dict(metrics)
    assert snapshot["consensus"]["leader_changes"] == 2
    restored = metrics_from_dict(snapshot)
    assert restored.consensus == metrics.consensus


def test_legacy_metrics_snapshot_has_no_consensus_key():
    snapshot = metrics_to_dict(PipelineMetrics())
    assert "consensus" not in snapshot
    assert metrics_from_dict(snapshot).consensus is None
