"""Property tests for the randomized crash-schedule generator.

``crash_schedule`` feeds both the chaos harness and sweep configs, so
its guarantees — windows inside the horizon, per-peer disjointness,
positive outages, determinism, and picklability — must hold for *any*
parameter combination, not just the handful the unit tests pin.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultSchedule, crash_schedule

PEERS = st.lists(
    st.sampled_from(
        ("peer1.OrgA", "peer0.OrgB", "peer1.OrgB", "peer2.OrgA")
    ),
    min_size=1,
    max_size=4,
    unique=True,
).map(tuple)


@settings(max_examples=25, deadline=None)
@given(
    peers=PEERS,
    crashes_per_peer=st.floats(min_value=0.0, max_value=4.0),
    run_duration=st.floats(min_value=0.5, max_value=20.0),
    mean_outage=st.floats(min_value=0.01, max_value=5.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_crash_schedule_properties(
    peers, crashes_per_peer, run_duration, mean_outage, seed
):
    windows = crash_schedule(
        peers, crashes_per_peer, run_duration, mean_outage, seed
    )

    # Every window lies fully inside the run horizon with a real outage.
    for window in windows:
        assert window.peer in peers
        assert window.at >= 0.0
        assert window.duration > 0.0
        assert window.until <= run_duration + 1e-9

    # Per-peer windows never overlap — the schedule always validates.
    FaultSchedule(crashes=windows, endorsement_timeout=0.05).validate()

    # Deterministic per seed, and picklable (sweep workers ship specs
    # through multiprocessing).
    again = crash_schedule(
        peers, crashes_per_peer, run_duration, mean_outage, seed
    )
    assert again == windows
    assert pickle.loads(pickle.dumps(windows)) == windows
