"""Unit tests for the fault schedule data model and its generators."""

from dataclasses import asdict

import pytest

from repro.errors import ConfigError
from repro.faults import (
    CrashWindow,
    FaultSchedule,
    OrdererCrashWindow,
    PartitionWindow,
    StallWindow,
    crash_schedule,
    schedule_from_dict,
)


def test_default_schedule_is_zero():
    schedule = FaultSchedule()
    assert schedule.is_zero
    schedule.validate()  # a zero schedule is always valid


def test_any_fault_knob_makes_schedule_nonzero():
    assert not FaultSchedule(
        crashes=(CrashWindow("peer1.OrgA", 1.0, 0.5),),
        endorsement_timeout=0.05,
    ).is_zero
    assert not FaultSchedule(
        drop_probability=0.1, endorsement_timeout=0.05
    ).is_zero
    assert not FaultSchedule(jitter_mean=0.01).is_zero
    assert not FaultSchedule(stalls=(StallWindow(1.0, 0.5),)).is_zero
    assert not FaultSchedule(endorsement_timeout=0.05).is_zero


def test_crashes_require_endorsement_timeout():
    schedule = FaultSchedule(crashes=(CrashWindow("peer1.OrgA", 1.0, 0.5),))
    with pytest.raises(ConfigError):
        schedule.validate()


def test_message_loss_requires_endorsement_timeout():
    with pytest.raises(ConfigError):
        FaultSchedule(drop_probability=0.2).validate()


def test_overlapping_crash_windows_rejected():
    schedule = FaultSchedule(
        crashes=(
            CrashWindow("peer1.OrgA", 1.0, 1.0),
            CrashWindow("peer1.OrgA", 1.5, 1.0),
        ),
        endorsement_timeout=0.05,
    )
    with pytest.raises(ConfigError):
        schedule.validate()


def test_same_windows_on_distinct_peers_allowed():
    FaultSchedule(
        crashes=(
            CrashWindow("peer1.OrgA", 1.0, 1.0),
            CrashWindow("peer0.OrgB", 1.0, 1.0),
        ),
        endorsement_timeout=0.05,
    ).validate()


@pytest.mark.parametrize(
    "kwargs",
    [
        {"drop_probability": -0.1},
        {"drop_probability": 1.0},
        {"jitter_mean": -1.0},
        {"endorsement_timeout": -1.0},
        {"max_endorsement_retries": -1},
        {"retry_backoff_base": 0.0},
        {"retry_backoff_factor": 0.5},
        {"retry_backoff_jitter": -0.5},
        {"block_redelivery_interval": 0.0},
        {"catchup_poll_interval": 0.0},
    ],
)
def test_out_of_range_knobs_rejected(kwargs):
    with pytest.raises(ConfigError):
        FaultSchedule(**kwargs).validate()


def test_malformed_windows_rejected():
    with pytest.raises(ConfigError):
        CrashWindow("", 1.0, 1.0).validate()
    with pytest.raises(ConfigError):
        CrashWindow("peer1.OrgA", -1.0, 1.0).validate()
    with pytest.raises(ConfigError):
        CrashWindow("peer1.OrgA", 1.0, 0.0).validate()
    with pytest.raises(ConfigError):
        StallWindow(-1.0, 1.0).validate()
    with pytest.raises(ConfigError):
        StallWindow(1.0, 0.0).validate()


def test_schedule_round_trips_through_asdict():
    schedule = FaultSchedule(
        crashes=(CrashWindow("peer1.OrgA", 0.5, 0.7),),
        stalls=(StallWindow(1.0, 0.2),),
        drop_probability=0.05,
        jitter_mean=0.002,
        endorsement_timeout=0.05,
        max_endorsement_retries=5,
    )
    assert schedule_from_dict(asdict(schedule)) == schedule


def test_schedule_round_trips_through_json():
    import json

    schedule = FaultSchedule(
        crashes=(CrashWindow("peer0.OrgB", 1.0, 0.3),),
        endorsement_timeout=0.1,
    )
    data = json.loads(json.dumps(asdict(schedule)))
    assert schedule_from_dict(data) == schedule


def test_unknown_schedule_keys_rejected_by_name():
    with pytest.raises(ConfigError, match="drop_probabilty"):
        schedule_from_dict({"drop_probabilty": 0.1})
    with pytest.raises(ConfigError, match="crashs.*stales"):
        schedule_from_dict({"stales": [], "crashs": []})


def test_crash_schedule_is_deterministic():
    args = (("peer1.OrgA", "peer0.OrgB"), 1.5, 10.0, 0.5, 7)
    assert crash_schedule(*args) == crash_schedule(*args)
    assert crash_schedule(*args) != crash_schedule(
        ("peer1.OrgA", "peer0.OrgB"), 1.5, 10.0, 0.5, 8
    )


def test_crash_schedule_windows_are_valid_and_disjoint():
    windows = crash_schedule(
        ("peer1.OrgA", "peer0.OrgB", "peer1.OrgB"),
        crashes_per_peer=3.0,
        run_duration=10.0,
        mean_outage=1.0,
        seed=42,
    )
    FaultSchedule(crashes=windows, endorsement_timeout=0.05).validate()
    for window in windows:
        assert 0.0 <= window.at < 10.0
        assert window.duration > 0


def test_crash_schedule_zero_density_is_empty():
    assert crash_schedule(("peer1.OrgA",), 0.0, 10.0, 0.5, 42) == ()


# -- consensus fault windows ------------------------------------------------


def consensus_schedule(**kwargs):
    kwargs.setdefault(
        "orderer_crashes", (OrdererCrashWindow(node=0, at=0.5, duration=0.5),)
    )
    kwargs.setdefault(
        "partitions",
        (PartitionWindow(at=1.5, duration=0.5, groups=((0, 1), (2,))),),
    )
    return FaultSchedule(endorsement_timeout=0.05, **kwargs)


def test_consensus_windows_make_schedule_nonzero():
    assert not FaultSchedule(
        orderer_crashes=(OrdererCrashWindow(node=1, at=0.2, duration=0.1),)
    ).is_zero
    assert not FaultSchedule(
        partitions=(PartitionWindow(at=0.2, duration=0.1, groups=((0,), (1,))),)
    ).is_zero


def test_consensus_schedule_round_trips_through_json():
    import json

    schedule = consensus_schedule()
    schedule.validate()
    rebuilt = schedule_from_dict(json.loads(json.dumps(asdict(schedule))))
    assert rebuilt == schedule


def test_overlapping_orderer_crash_windows_rejected():
    schedule = FaultSchedule(
        orderer_crashes=(
            OrdererCrashWindow(node=1, at=0.5, duration=0.5),
            OrdererCrashWindow(node=1, at=0.8, duration=0.5),
        ),
    )
    with pytest.raises(ConfigError, match="overlapping orderer crash"):
        schedule.validate()
    # The same windows on distinct nodes are fine.
    FaultSchedule(
        orderer_crashes=(
            OrdererCrashWindow(node=1, at=0.5, duration=0.5),
            OrdererCrashWindow(node=2, at=0.8, duration=0.5),
        ),
    ).validate()


def test_overlapping_partition_windows_rejected():
    schedule = FaultSchedule(
        partitions=(
            PartitionWindow(at=0.5, duration=0.5, groups=((0,), (1, 2))),
            PartitionWindow(at=0.9, duration=0.5, groups=((0, 1), (2,))),
        ),
    )
    with pytest.raises(ConfigError, match="overlapping partition"):
        schedule.validate()


@pytest.mark.parametrize(
    "window,message",
    [
        (OrdererCrashWindow(node=-1, at=0.5, duration=0.5), "node index"),
        (OrdererCrashWindow(node=0, at=-0.1, duration=0.5), ">= 0"),
        (OrdererCrashWindow(node=0, at=0.5, duration=0.0), "> 0"),
        (PartitionWindow(at=0.5, duration=0.5, groups=()), "two groups"),
        (PartitionWindow(at=0.5, duration=0.5, groups=((0,),)), "two groups"),
        (
            PartitionWindow(at=0.5, duration=0.5, groups=((0,), ())),
            "non-empty",
        ),
        (
            PartitionWindow(at=0.5, duration=0.5, groups=((0, 1), (1,))),
            "more than one partition group",
        ),
    ],
)
def test_malformed_consensus_windows_rejected(window, message):
    with pytest.raises(ConfigError, match=message):
        window.validate()


def test_validation_error_names_the_offending_window():
    schedule = FaultSchedule(
        orderer_crashes=(
            OrdererCrashWindow(node=0, at=0.1, duration=0.2),
            OrdererCrashWindow(node=2, at=-1.0, duration=0.2),
        ),
        endorsement_timeout=0.05,
    )
    with pytest.raises(
        ConfigError, match=r"orderer_crashes\[1\] \(orderer2@-1.0\+0.2\)"
    ):
        schedule.validate()


def test_consensus_window_describe_forms():
    assert (
        OrdererCrashWindow(node=2, at=0.4, duration=0.6).describe()
        == "orderer2@0.4+0.6"
    )
    assert (
        PartitionWindow(at=1.0, duration=0.5, groups=((0, 1), (2,))).describe()
        == "partition@1.0+0.5 [0,1|2]"
    )
