"""Misbehaving-client populations: specs, assignment, and runtime effect."""

import pytest

from repro.core.batch_cutter import BatchCutConfig
from repro.errors import ConfigError
from repro.fabric.config import FabricConfig
from repro.fabric.metrics import TxOutcome
from repro.fabric.network import FabricNetwork
from repro.faults import (
    FaultSchedule,
    MisbehaviorSpec,
    assign_misbehaviors,
    schedule_from_dict,
)
from repro.workloads.registry import make_workload


def run_with(misbehavior: MisbehaviorSpec, **config_overrides):
    from dataclasses import replace

    config = replace(
        FabricConfig(),
        batch=BatchCutConfig(max_transactions=32),
        clients_per_channel=2,
        client_rate=120.0,
        seed=9,
        faults=FaultSchedule(misbehaviors=(misbehavior,)),
        **config_overrides,
    )
    workload = make_workload(
        "smallbank", seed=9, num_users=300, prob_write=0.95, s_value=1.0
    )
    network = FabricNetwork(config, workload)
    return network.run(1.0, drain=3.0)


# -- spec validation ------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"kind": "ddos"},
        {"kind": "stale_replay", "fraction": 0.0},
        {"kind": "stale_replay", "fraction": 1.5},
        {"kind": "stale_replay", "rate": 0.0},
        {"kind": "stale_replay", "hold_time": 0.0},
        {"kind": "oversized_rwset", "padding": 0},
        {"kind": "resubmit_storm", "storm_factor": 0},
        {"kind": "resubmit_storm", "storm_cap": 0},
    ],
)
def test_invalid_specs_rejected(kwargs):
    with pytest.raises(ConfigError):
        MisbehaviorSpec(**kwargs).validate()


def test_misbehaviors_make_schedule_nonzero():
    schedule = FaultSchedule(
        misbehaviors=(MisbehaviorSpec(kind="stale_replay"),)
    )
    assert not schedule.is_zero
    schedule.validate()  # needs no endorsement timeout


def test_schedule_round_trips_misbehaviors():
    schedule = FaultSchedule(
        misbehaviors=(
            MisbehaviorSpec(kind="stale_replay", fraction=0.5, hold_time=0.1),
            MisbehaviorSpec(kind="resubmit_storm", storm_factor=2, storm_cap=8),
        )
    )
    assert schedule_from_dict(schedule.to_dict()) == schedule


# -- population assignment ------------------------------------------------------


def test_assignment_is_deterministic():
    schedule = FaultSchedule(
        misbehaviors=(MisbehaviorSpec(kind="stale_replay", fraction=0.5),)
    )
    first = assign_misbehaviors(schedule, seed=3, channel_index=0, num_clients=8)
    second = assign_misbehaviors(schedule, seed=3, channel_index=0, num_clients=8)
    assert first == second
    assert len(first) == 4  # round(0.5 * 8)
    # The population is seed-derived: across many seeds the chosen
    # client sets must vary (a constant set would mean the seed is dead).
    populations = {
        tuple(
            sorted(
                assign_misbehaviors(
                    schedule, seed=seed, channel_index=0, num_clients=8
                )
            )
        )
        for seed in range(12)
    }
    assert len(populations) > 1


def test_assignment_covers_at_least_one_client():
    schedule = FaultSchedule(
        misbehaviors=(MisbehaviorSpec(kind="stale_replay", fraction=0.01),)
    )
    assignment = assign_misbehaviors(
        schedule, seed=0, channel_index=0, num_clients=4
    )
    assert len(assignment) == 1


def test_first_spec_wins_on_overlap():
    schedule = FaultSchedule(
        misbehaviors=(
            MisbehaviorSpec(kind="stale_replay", fraction=1.0),
            MisbehaviorSpec(kind="resubmit_storm", fraction=1.0),
        )
    )
    assignment = assign_misbehaviors(
        schedule, seed=1, channel_index=0, num_clients=6
    )
    assert len(assignment) == 6
    assert all(spec.kind == "stale_replay" for spec in assignment.values())


# -- runtime effect -------------------------------------------------------------


def test_stale_replay_holds_then_aborts():
    metrics = run_with(
        MisbehaviorSpec(kind="stale_replay", fraction=0.5, rate=0.5, hold_time=0.2)
    )
    replays = metrics.fault_counters.get("stale_replays", 0)
    assert replays > 0
    # Holding an endorsed rwset across committed blocks makes MVCC
    # failure near-certain under a contended workload.
    assert metrics.outcomes.get(TxOutcome.ABORT_MVCC, 0) > 0
    assert metrics.resolved == metrics.fired


def test_oversized_rwset_fails_the_endorsement_match():
    metrics = run_with(
        MisbehaviorSpec(kind="oversized_rwset", fraction=0.5, rate=0.5, padding=16)
    )
    padded = metrics.fault_counters.get("oversized_rwsets", 0)
    assert padded > 0
    # Every padded transaction no longer matches its endorsements and
    # must fall to the policy check — nothing else produces
    # abort_policy in this run.
    assert metrics.outcomes.get(TxOutcome.ABORT_POLICY, 0) == padded
    assert metrics.resolved == metrics.fired


def test_resubmit_storm_is_bounded_by_the_cap():
    metrics = run_with(
        MisbehaviorSpec(
            kind="resubmit_storm", fraction=0.5, storm_factor=3, storm_cap=30
        )
    )
    stormed = metrics.fault_counters.get("storm_resubmits", 0)
    assert stormed > 0
    # Two channels' worth of capped stormers: per-client bursts never
    # exceed storm_cap, so the global counter is bounded by cap x
    # misbehaving clients (1 per channel at fraction 0.5 of 2 clients).
    assert stormed <= 30
    assert metrics.resolved == metrics.fired


def test_misbehavior_runs_are_deterministic():
    spec = MisbehaviorSpec(kind="stale_replay", fraction=0.5, rate=0.5)
    first = run_with(spec)
    second = run_with(spec)
    assert first.outcomes == second.outcomes
    assert first.fault_counters == second.fault_counters
    assert first.commit_latencies == second.commit_latencies
