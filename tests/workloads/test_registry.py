"""Tests for the workload registry and WorkloadRef."""

import pickle

import pytest

from repro.errors import ConfigError
from repro.workloads.blank import BlankWorkload
from repro.workloads.custom import CustomWorkload
from repro.workloads.registry import (
    WorkloadRef,
    make_workload,
    register_workload,
    workload_names,
)
from repro.workloads.smallbank import SmallbankWorkload
from repro.workloads.ycsb import YcsbWorkload


def test_builtin_names_registered():
    names = workload_names()
    assert {"blank", "custom", "smallbank", "ycsb"} <= set(names)
    assert names == tuple(sorted(names))


def test_make_workload_builds_each_builtin():
    assert isinstance(make_workload("blank"), BlankWorkload)
    assert isinstance(make_workload("custom", num_accounts=500), CustomWorkload)
    smallbank = make_workload("smallbank", seed=3, num_users=200)
    assert isinstance(smallbank, SmallbankWorkload)
    assert smallbank.params.num_users == 200
    ycsb = make_workload("ycsb", preset="b", num_records=100)
    assert isinstance(ycsb, YcsbWorkload)
    assert ycsb.params.mix == {"read": 0.95, "update": 0.05}


def test_make_workload_unknown_name():
    with pytest.raises(ConfigError, match="unknown workload"):
        make_workload("tpcc")


def test_make_workload_bad_params():
    with pytest.raises(ConfigError, match="bad parameters"):
        make_workload("custom", no_such_knob=1)
    with pytest.raises(ConfigError, match="no parameters"):
        make_workload("blank", num_accounts=5)


def test_register_rejects_duplicates():
    with pytest.raises(ConfigError, match="already registered"):
        register_workload("blank", lambda seed=0: BlankWorkload())


def test_ref_builds_fresh_instances():
    ref = WorkloadRef("custom", {"num_accounts": 400}, seed=9)
    first, second = ref.build(), ref.build()
    assert first is not second
    assert first.params.num_accounts == 400


def test_ref_is_picklable_and_hashable_description():
    ref = WorkloadRef("smallbank", {"num_users": 50, "s_value": 1.0}, seed=2)
    clone = pickle.loads(pickle.dumps(ref))
    assert clone == ref
    assert clone.describe() == {
        "name": "smallbank",
        "params": {"num_users": 50, "s_value": 1.0},
        "seed": 2,
    }


def test_ref_surfaces_registry_errors_on_build():
    with pytest.raises(ConfigError):
        WorkloadRef("nope").build()
