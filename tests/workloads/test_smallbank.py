"""Unit tests for the Smallbank workload."""

import pytest

from repro.errors import ChaincodeError
from repro.fabric.chaincode import ChaincodeStub
from repro.ledger.state_db import StateDatabase
from repro.sim.distributions import Rng
from repro.workloads.smallbank import (
    MODIFYING_FUNCTIONS,
    SmallbankChaincode,
    SmallbankParams,
    SmallbankWorkload,
    checking_key,
    savings_key,
)


@pytest.fixture
def state():
    db = StateDatabase()
    db.populate(
        {
            checking_key(0): 100,
            savings_key(0): 500,
            checking_key(1): 200,
            savings_key(1): 50,
        }
    )
    return db


def invoke(state, function, args):
    stub = ChaincodeStub(state)
    result = SmallbankChaincode().invoke(stub, function, args)
    return stub.rwset, result


def test_transact_savings(state):
    rwset, _ = invoke(state, "transact_savings", (0, 30))
    assert rwset.writes == {savings_key(0): 530}
    assert set(rwset.reads) == {savings_key(0)}


def test_deposit_checking(state):
    rwset, _ = invoke(state, "deposit_checking", (0, 25))
    assert rwset.writes == {checking_key(0): 125}


def test_send_payment_moves_funds(state):
    rwset, _ = invoke(state, "send_payment", (0, 1, 40))
    assert rwset.writes == {checking_key(0): 60, checking_key(1): 240}
    assert set(rwset.reads) == {checking_key(0), checking_key(1)}


def test_write_check_sufficient_funds(state):
    rwset, _ = invoke(state, "write_check", (0, 50))
    assert rwset.writes == {checking_key(0): 50}
    # Reads both accounts to evaluate the total balance.
    assert set(rwset.reads) == {checking_key(0), savings_key(0)}


def test_write_check_overdraft_penalty(state):
    rwset, _ = invoke(state, "write_check", (0, 601))  # total balance 600
    assert rwset.writes == {checking_key(0): 100 - 601 - 1}


def test_amalgamate(state):
    rwset, _ = invoke(state, "amalgamate", (0,))
    assert rwset.writes == {savings_key(0): 0, checking_key(0): 600}


def test_query_reads_both_accounts(state):
    rwset, total = invoke(state, "query", (0,))
    assert total == 600
    assert not rwset.writes
    assert set(rwset.reads) == {checking_key(0), savings_key(0)}


def test_unknown_function_rejected(state):
    with pytest.raises(ChaincodeError):
        invoke(state, "steal_everything", (0,))


def test_accounts_default_to_zero():
    empty = StateDatabase()
    rwset, _ = invoke(empty, "deposit_checking", (7, 10))
    assert rwset.writes == {checking_key(7): 10}
    assert rwset.reads[checking_key(7)] is None


# -- workload generator --------------------------------------------------------------


def test_initial_state_has_two_accounts_per_user():
    workload = SmallbankWorkload(SmallbankParams(num_users=10))
    state = workload.initial_state()
    assert len(state) == 20
    params = workload.params
    assert all(
        params.min_balance <= value <= params.max_balance
        for value in state.values()
    )


def test_initial_state_deterministic_by_seed():
    a = SmallbankWorkload(SmallbankParams(num_users=5), seed=1).initial_state()
    b = SmallbankWorkload(SmallbankParams(num_users=5), seed=1).initial_state()
    c = SmallbankWorkload(SmallbankParams(num_users=5), seed=2).initial_state()
    assert a == b
    assert a != c


def test_write_probability_respected():
    workload = SmallbankWorkload(
        SmallbankParams(num_users=100, prob_write=0.95), seed=0
    )
    rng = Rng(0)
    invocations = [workload.next_invocation(rng) for _ in range(2000)]
    writes = sum(1 for inv in invocations if inv.function != "query")
    assert 0.92 < writes / len(invocations) < 0.98


def test_read_heavy_profile():
    workload = SmallbankWorkload(
        SmallbankParams(num_users=100, prob_write=0.05), seed=0
    )
    rng = Rng(0)
    invocations = [workload.next_invocation(rng) for _ in range(2000)]
    queries = sum(1 for inv in invocations if inv.function == "query")
    assert queries / len(invocations) > 0.9


def test_all_modifying_functions_occur():
    workload = SmallbankWorkload(
        SmallbankParams(num_users=100, prob_write=1.0), seed=0
    )
    rng = Rng(0)
    seen = {workload.next_invocation(rng).function for _ in range(500)}
    assert seen == set(MODIFYING_FUNCTIONS)


def test_send_payment_never_self_transfer():
    workload = SmallbankWorkload(
        SmallbankParams(num_users=3, prob_write=1.0, s_value=2.0), seed=0
    )
    rng = Rng(0)
    for _ in range(500):
        invocation = workload.next_invocation(rng)
        if invocation.function == "send_payment":
            source, destination, _amount = invocation.args
            assert source != destination


def test_zipf_skew_concentrates_customers():
    workload = SmallbankWorkload(
        SmallbankParams(num_users=1000, prob_write=1.0, s_value=2.0), seed=0
    )
    rng = Rng(0)
    customers = [workload.next_invocation(rng).args[0] for _ in range(2000)]
    counts = {}
    for customer in customers:
        counts[customer] = counts.get(customer, 0) + 1
    assert max(counts.values()) / len(customers) > 0.4


def test_invocations_executable_against_initial_state():
    workload = SmallbankWorkload(SmallbankParams(num_users=50), seed=3)
    state = StateDatabase()
    state.populate(workload.initial_state())
    chaincode = workload.create_chaincode()
    rng = Rng(1)
    for _ in range(200):
        invocation = workload.next_invocation(rng)
        stub = ChaincodeStub(state)
        chaincode.invoke(stub, invocation.function, invocation.args)


def test_operation_counts_positive():
    chaincode = SmallbankChaincode()
    for function in MODIFYING_FUNCTIONS + ("query",):
        assert chaincode.operation_count(function, ()) >= 2
