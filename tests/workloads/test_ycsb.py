"""Unit tests for the YCSB-style workload."""

from collections import Counter
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch_cutter import BatchCutConfig
from repro.errors import ChaincodeError, ConfigError
from repro.fabric.chaincode import ChaincodeStub
from repro.fabric.config import FabricConfig
from repro.fabric.network import FabricNetwork
from repro.ledger.state_db import StateDatabase
from repro.sim.distributions import Rng
from repro.workloads.ycsb import (
    PRESETS,
    YcsbChaincode,
    YcsbParams,
    YcsbWorkload,
    record_key,
)


def test_record_keys_are_ordered():
    assert record_key(5) < record_key(50) < record_key(500)
    assert record_key(9) < record_key(10)  # zero padding matters


def test_params_validation():
    with pytest.raises(ConfigError):
        YcsbParams(num_records=0).validate()
    with pytest.raises(ConfigError):
        YcsbParams(mix={"read": 0.5}).validate()
    with pytest.raises(ConfigError):
        YcsbParams(mix={"read": 0.5, "steal": 0.5}).validate()
    YcsbParams().validate()


def test_presets_all_valid():
    for name in PRESETS:
        YcsbParams.preset(name).validate()


def test_unknown_preset_rejected():
    with pytest.raises(ConfigError):
        YcsbParams.preset("z")


def test_initial_state_size_and_determinism():
    a = YcsbWorkload(YcsbParams(num_records=100), seed=1).initial_state()
    b = YcsbWorkload(YcsbParams(num_records=100), seed=1).initial_state()
    assert len(a) == 100
    assert a == b


@pytest.fixture
def state():
    workload = YcsbWorkload(YcsbParams(num_records=20), seed=0)
    db = StateDatabase()
    db.populate(workload.initial_state())
    return db


def test_chaincode_read(state):
    stub = ChaincodeStub(state)
    value = YcsbChaincode().invoke(stub, "read", (record_key(3),))
    assert value == state.get_value(record_key(3))
    assert not stub.rwset.writes


def test_chaincode_update(state):
    stub = ChaincodeStub(state)
    YcsbChaincode().invoke(stub, "update", (record_key(3), 42))
    assert stub.rwset.writes == {record_key(3): 42}
    assert not stub.rwset.reads  # blind write


def test_chaincode_rmw(state):
    stub = ChaincodeStub(state)
    before = state.get_value(record_key(7))
    result = YcsbChaincode().invoke(stub, "rmw", (record_key(7), 5))
    assert result == before + 5
    assert record_key(7) in stub.rwset.reads
    assert stub.rwset.writes == {record_key(7): before + 5}


def test_chaincode_scan_returns_ordered_prefix(state):
    stub = ChaincodeStub(state)
    results = YcsbChaincode().invoke(stub, "scan", (record_key(15), 3))
    assert [key for key, _ in results] == [
        record_key(15), record_key(16), record_key(17),
    ]
    assert len(stub.rwset.range_reads) == 1


def test_chaincode_unknown_operation(state):
    with pytest.raises(ChaincodeError):
        YcsbChaincode().invoke(ChaincodeStub(state), "drop_table", ())


def test_mix_proportions_respected():
    workload = YcsbWorkload(YcsbParams.preset("b", num_records=1000), seed=0)
    rng = Rng(1)
    operations = Counter(
        workload.next_invocation(rng).function for _ in range(4000)
    )
    assert 0.92 < operations["read"] / 4000 < 0.98
    assert operations["update"] > 0
    assert set(operations) == {"read", "update"}


def test_read_only_mix():
    workload = YcsbWorkload(YcsbParams.preset("c", num_records=100), seed=0)
    rng = Rng(2)
    assert all(
        workload.next_invocation(rng).function == "read" for _ in range(200)
    )


def test_inserts_use_fresh_monotonic_keys():
    workload = YcsbWorkload(YcsbParams.preset("d", num_records=50), seed=0)
    rng = Rng(3)
    inserted = [
        invocation.args[0]
        for invocation in (workload.next_invocation(rng) for _ in range(500))
        if invocation.function == "insert"
    ]
    assert inserted, "no inserts drawn"
    assert inserted == sorted(inserted)
    assert len(set(inserted)) == len(inserted)
    assert all(key >= record_key(50) for key in inserted)


def test_scan_lengths_bounded():
    params = YcsbParams.preset("e", num_records=100, max_scan_length=5)
    workload = YcsbWorkload(params, seed=0)
    rng = Rng(4)
    for _ in range(200):
        invocation = workload.next_invocation(rng)
        if invocation.function == "scan":
            assert 1 <= invocation.args[1] <= 5


def test_zipf_skew_applies_to_requests():
    workload = YcsbWorkload(
        YcsbParams(mix={"read": 1.0}, num_records=1000, s_value=1.2), seed=0
    )
    rng = Rng(5)
    keys = Counter(
        workload.next_invocation(rng).args[0] for _ in range(3000)
    )
    assert keys.most_common(1)[0][1] > 100  # heavily skewed


def test_hotspot_params_validation():
    with pytest.raises(ConfigError):
        YcsbParams(hotspot_interval=-1).validate()
    with pytest.raises(ConfigError):
        YcsbParams(hot_set_drift=1.5).validate()
    with pytest.raises(ConfigError):
        YcsbParams(hot_set_drift=-0.1).validate()
    YcsbParams(hotspot_interval=100, hot_set_drift=0.25).validate()


def test_hotspot_defaults_leave_the_stream_unchanged():
    params = YcsbParams(mix={"read": 1.0}, num_records=200, s_value=1.0)
    drifting = replace(params, hotspot_interval=0, hot_set_drift=0.5)
    a = YcsbWorkload(params, seed=0)
    b = YcsbWorkload(drifting, seed=0)
    rng_a, rng_b = Rng(9), Rng(9)
    for _ in range(300):
        assert a.next_invocation(rng_a) == b.next_invocation(rng_b)


def test_hot_set_drift_moves_the_mode():
    params = YcsbParams(
        mix={"read": 1.0}, num_records=1000, s_value=1.4,
        hotspot_interval=500, hot_set_drift=0.5,
    )
    workload = YcsbWorkload(params, seed=0)
    rng = Rng(6)
    first = Counter(workload.next_invocation(rng).args[0] for _ in range(500))
    second = Counter(workload.next_invocation(rng).args[0] for _ in range(500))
    # Zipf rank 0 dominates each window; after the rotation it sits half
    # a keyspace away from where it started.
    peak_before = int(first.most_common(1)[0][0][len("user"):])
    peak_after = int(second.most_common(1)[0][0][len("user"):])
    assert (peak_before + 500) % 1000 == peak_after


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    interval=st.integers(min_value=0, max_value=50),
    drift=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
@settings(max_examples=25, deadline=None)
def test_hotspot_streams_are_deterministic(seed, interval, drift):
    params = YcsbParams.preset(
        "a", num_records=100, hotspot_interval=interval, hot_set_drift=drift
    )
    streams = []
    for _ in range(2):
        workload = YcsbWorkload(params, seed=seed)
        rng = Rng(seed)
        streams.append([workload.next_invocation(rng) for _ in range(120)])
    assert streams[0] == streams[1]


def test_ycsb_runs_through_the_pipeline():
    config = replace(
        FabricConfig(),
        clients_per_channel=2,
        client_rate=100.0,
        batch=BatchCutConfig(max_transactions=64),
    )
    workload = YcsbWorkload(YcsbParams.preset("a", num_records=500), seed=0)
    metrics = FabricNetwork(config, workload).run(duration=1.5)
    assert metrics.successful > 0


def test_ycsb_scan_workload_through_pipeline():
    config = replace(
        FabricConfig(),
        clients_per_channel=1,
        client_rate=50.0,
        batch=BatchCutConfig(max_transactions=32),
    )
    workload = YcsbWorkload(
        YcsbParams.preset("e", num_records=300, max_scan_length=4), seed=0
    )
    metrics = FabricNetwork(config, workload).run(duration=2.0)
    assert metrics.successful > 0
