"""Unit tests for the custom hot-account workload and blank transactions."""

import pytest

from repro.errors import ChaincodeError, ConfigError
from repro.fabric.chaincode import ChaincodeStub
from repro.ledger.state_db import StateDatabase
from repro.sim.distributions import Rng
from repro.workloads.blank import BlankWorkload
from repro.workloads.custom import (
    CustomChaincode,
    CustomWorkload,
    CustomWorkloadParams,
    account_key,
)


def test_params_validation():
    with pytest.raises(ConfigError):
        CustomWorkloadParams(num_accounts=0).validate()
    with pytest.raises(ConfigError):
        CustomWorkloadParams(reads_writes=0).validate()
    with pytest.raises(ConfigError):
        CustomWorkloadParams(prob_hot_read=1.5).validate()
    with pytest.raises(ConfigError):
        CustomWorkloadParams(num_accounts=10, hot_set_fraction=0.0).validate()
    CustomWorkloadParams().validate()


def test_hot_set_size():
    params = CustomWorkloadParams(num_accounts=10_000, hot_set_fraction=0.02)
    assert params.hot_set_size == 200


def test_initial_state_covers_all_accounts():
    workload = CustomWorkload(
        CustomWorkloadParams(num_accounts=50, hot_set_fraction=0.1)
    )
    state = workload.initial_state()
    assert len(state) == 50
    assert account_key(0) in state
    assert account_key(49) in state


def test_chaincode_reads_then_writes():
    db = StateDatabase()
    db.populate({account_key(i): 10 * i for i in range(5)})
    stub = ChaincodeStub(db)
    CustomChaincode().invoke(
        stub, "readwrite", ((0, 1), (2, 3), 7)
    )
    assert set(stub.rwset.reads) == {account_key(0), account_key(1)}
    assert set(stub.rwset.writes) == {account_key(2), account_key(3)}


def test_chaincode_checksum_deterministic():
    db = StateDatabase()
    db.populate({account_key(i): i for i in range(4)})
    stub_a = ChaincodeStub(db)
    stub_b = ChaincodeStub(db)
    chaincode = CustomChaincode()
    a = chaincode.invoke(stub_a, "readwrite", ((0, 1), (2,), 5))
    b = chaincode.invoke(stub_b, "readwrite", ((0, 1), (2,), 5))
    assert a == b
    assert stub_a.rwset == stub_b.rwset


def test_chaincode_unknown_function():
    with pytest.raises(ChaincodeError):
        CustomChaincode().invoke(
            ChaincodeStub(StateDatabase()), "nope", ((), (), 0)
        )


def test_operation_count_matches_accesses():
    count = CustomChaincode().operation_count("readwrite", ((0, 1, 2), (3,), 9))
    assert count == 4


def test_invocation_respects_rw_count():
    workload = CustomWorkload(
        CustomWorkloadParams(num_accounts=100, reads_writes=6)
    )
    invocation = workload.next_invocation(Rng(0))
    reads, writes, _ = invocation.args
    assert len(reads) == 6
    assert len(writes) == 6
    assert len(set(reads)) == 6  # distinct accounts per access set
    assert len(set(writes)) == 6


def test_hot_read_probability_shapes_access():
    params = CustomWorkloadParams(
        num_accounts=1000,
        reads_writes=1,
        prob_hot_read=0.9,
        prob_hot_write=0.0,
        hot_set_fraction=0.01,
    )
    workload = CustomWorkload(params)
    rng = Rng(0)
    hot_reads = 0
    total = 3000
    for _ in range(total):
        reads, writes, _ = workload.next_invocation(rng).args
        if reads[0] < params.hot_set_size:
            hot_reads += 1
        assert writes[0] >= params.hot_set_size  # HW=0: never hot
    assert 0.85 < hot_reads / total < 0.95


def test_invocations_deterministic_per_seeded_rng():
    workload = CustomWorkload(CustomWorkloadParams(num_accounts=100))
    a = [workload.next_invocation(Rng(5)) for _ in range(10)]
    b = [workload.next_invocation(Rng(5)) for _ in range(10)]
    assert a == b


# -- blank workload -------------------------------------------------------------------


def test_blank_chaincode_touches_nothing():
    stub = ChaincodeStub(StateDatabase())
    BlankWorkload().create_chaincode().invoke(stub, "noop", ())
    assert stub.rwset.is_empty()


def test_blank_initial_state_empty():
    assert BlankWorkload().initial_state() == {}


def test_blank_invocations_are_noops():
    workload = BlankWorkload()
    invocation = workload.next_invocation(Rng(0))
    assert invocation.function == "noop"
    assert invocation.args == ()
