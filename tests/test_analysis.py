"""Tests for run records, persistence, and comparison reports."""

from dataclasses import replace

import pytest

from repro.analysis import (
    RunRecord,
    comparison_report,
    load_records,
    record_from_result,
    save_records,
)
from repro.bench.harness import run_experiment
from repro.core.batch_cutter import BatchCutConfig
from repro.errors import ReproError
from repro.fabric.config import FabricConfig
from repro.workloads.blank import BlankWorkload


@pytest.fixture(scope="module")
def result():
    config = replace(
        FabricConfig(),
        clients_per_channel=1,
        client_rate=100.0,
        batch=BatchCutConfig(max_transactions=32),
    )
    return run_experiment(
        config, BlankWorkload(), duration=2.0, params={"bs": 32}
    )


def test_record_from_result(result):
    record = record_from_result(result, workload="blank")
    assert record.label == "Fabric"
    assert record.workload == "blank"
    assert record.duration == 2.0
    assert record.params == {"bs": 32}
    assert record.successful_tps > 0
    assert record.timeseries, "timeseries should not be empty"
    assert record.timeseries[0]["t"] == 1.0


def test_timeseries_consistent_with_summary(result):
    record = record_from_result(result, workload="blank")
    total_successes = sum(
        bucket["successful_tps"] for bucket in record.timeseries
    )
    assert total_successes == pytest.approx(
        record.successful_tps * record.duration / 1.0, rel=0.01
    )


def test_json_round_trip(tmp_path, result):
    records = [record_from_result(result, workload="blank")]
    path = tmp_path / "runs.json"
    save_records(path, records)
    loaded = load_records(path)
    assert len(loaded) == 1
    assert loaded[0].to_dict() == records[0].to_dict()


def test_load_rejects_garbage(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("not json at all {")
    with pytest.raises(ReproError):
        load_records(path)


def test_load_rejects_missing_file(tmp_path):
    with pytest.raises(ReproError):
        load_records(tmp_path / "missing.json")


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "old.json"
    path.write_text('{"schema_version": 99, "records": []}')
    with pytest.raises(ReproError):
        load_records(path)


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ReproError):
        RunRecord.from_dict({"label": "x", "workload": "y", "duration": 1,
                             "seed": 0, "bogus": True})


def make_record(label, tps, workload="w", params=None):
    return RunRecord(
        label=label, workload=workload, duration=1.0, seed=0,
        params=params or {}, summary={"successful_tps": tps},
    )


def test_comparison_report_factors():
    records = [
        make_record("Fabric", 100.0),
        make_record("Fabric++", 250.0),
    ]
    report = comparison_report(records)
    assert "2.50" in report
    assert "baseline: Fabric" in report


def test_comparison_report_matches_on_params():
    records = [
        make_record("Fabric", 100.0, params={"bs": 16}),
        make_record("Fabric", 200.0, params={"bs": 1024}),
        make_record("Fabric++", 400.0, params={"bs": 1024}),
    ]
    report = comparison_report(records)
    # Fabric++ at bs=1024 compares against Fabric at bs=1024 -> 2.0.
    assert "2.00" in report


def test_comparison_without_baseline_is_identity():
    records = [make_record("Fabric++", 300.0)]
    report = comparison_report(records)
    assert "1.00" in report
